"""Versioned world-state database with ordered range scans.

Each smart contract gets its own namespace (its own world state), which is
what makes the paper's *smart contract partitioning* optimization work:
after a split, the two contracts' keys live in disjoint namespaces and can
no longer conflict.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Iterator

from repro.fabric.transaction import DELETED, Version


@dataclass(frozen=True)
class VersionedValue:
    """A committed value together with the version that wrote it."""

    value: Any
    version: Version


class WorldState:
    """A single namespace's key-value store with Fabric-style versions.

    Keys are kept in a sorted index (maintained incrementally with
    ``bisect``) so range scans are ``O(log n + k)``, mirroring the ordered
    iterators of LevelDB/CouchDB backing real Fabric peers.
    """

    def __init__(self, namespace: str = "default") -> None:
        self.namespace = namespace
        self._data: dict[str, VersionedValue] = {}
        self._sorted_keys: list[str] = []

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def get(self, key: str) -> VersionedValue | None:
        """Committed value+version for ``key``, or ``None`` if absent."""
        return self._data.get(key)

    def version(self, key: str) -> Version | None:
        """The committed version of ``key``, or ``None`` if absent."""
        entry = self._data.get(key)
        return entry.version if entry is not None else None

    def put(self, key: str, value: Any, version: Version) -> None:
        """Commit ``value`` at ``version``; ``DELETED`` removes the key."""
        if value == DELETED:
            self.delete(key)
            return
        if key not in self._data:
            bisect.insort(self._sorted_keys, key)
        self._data[key] = VersionedValue(value=value, version=version)

    def delete(self, key: str) -> None:
        """Remove ``key`` from the namespace (committed deletion)."""
        if key in self._data:
            del self._data[key]
            index = bisect.bisect_left(self._sorted_keys, key)
            # The key is guaranteed present at `index` by the sorted invariant.
            del self._sorted_keys[index]

    def range_scan(self, start: str, end: str) -> Iterator[tuple[str, VersionedValue]]:
        """Yield ``(key, entry)`` for keys in ``[start, end)`` in order."""
        lo = bisect.bisect_left(self._sorted_keys, start)
        hi = bisect.bisect_left(self._sorted_keys, end)
        for key in self._sorted_keys[lo:hi]:
            yield key, self._data[key]

    def keys(self) -> list[str]:
        """All keys in sorted order (copy)."""
        return list(self._sorted_keys)

    def snapshot_versions(self) -> dict[str, Version]:
        """Map of every key to its current version (for test assertions)."""
        return {key: entry.version for key, entry in self._data.items()}


class StateDatabase:
    """All namespaces of one peer / channel.

    Real Fabric scopes chaincode state by chaincode name; we do the same so
    that contract partitioning produces genuinely independent stores.
    """

    def __init__(self) -> None:
        self._namespaces: dict[str, WorldState] = {}

    def namespace(self, name: str) -> WorldState:
        """The :class:`WorldState` for ``name``, created on first use."""
        if name not in self._namespaces:
            self._namespaces[name] = WorldState(namespace=name)
        return self._namespaces[name]

    def namespaces(self) -> list[str]:
        """All contract namespaces created so far."""
        return sorted(self._namespaces)

    def total_keys(self) -> int:
        """Keys committed across every namespace."""
        return sum(len(ws) for ws in self._namespaces.values())
