"""Endorsing peers and the endorsement phase.

The client selects one alternative among the policy's minimal satisfying
org sets (a Zipf-weighted choice: skew 0 spreads load evenly, high skew
reproduces the paper's *endorser distribution skew* where clients always
hit the same orgs).  Each selected org executes the chaincode on one of
its peers; the read-write set is produced by whichever peer starts first,
against the committed state at that instant — the staleness that later
causes MVCC conflicts.

If a peer's queue is longer than ``endorse_timeout``, the client gives up
on that org: the transaction is submitted with a *missing endorsement* and
fails policy validation — the mechanism behind endorsement-policy failures
under endorser bottlenecks.  A *crashed* peer (scenario intervention)
behaves the same way: clients cannot reach it, so its org's endorsement
goes missing until the peer recovers.
"""

from __future__ import annotations

from typing import Callable

from repro.fabric.chaincode import ChaincodeAbort, ChaincodeContext, Contract
from repro.fabric.conditions import NetworkConditions
from repro.fabric.config import NetworkConfig
from repro.fabric.policy import EndorsementPolicy
from repro.fabric.state import StateDatabase
from repro.fabric.transaction import Transaction
from repro.sim.kernel import Kernel
from repro.sim.resources import Server
from repro.sim.rng import SimRng, WeightedSampler, zipf_weights


class EndorserPool:
    """All endorsing peers, plus the endorsement orchestration logic."""

    def __init__(
        self,
        kernel: Kernel,
        config: NetworkConfig,
        policy: EndorsementPolicy,
        state_db: StateDatabase,
        contracts: dict[str, Contract],
        rng: SimRng,
        conditions: NetworkConditions | None = None,
    ) -> None:
        self._kernel = kernel
        self._timing = config.timing
        self._conditions = conditions or NetworkConditions(config.timing)
        self._policy = policy
        self._state_db = state_db
        self._contracts = contracts
        self._rng = rng
        self._selection_skew = config.endorser_selection_skew
        self._peers_by_org: dict[str, list[Server]] = {}
        for org in config.orgs:
            self._peers_by_org[org.name] = [
                Server(kernel, name) for name in org.endorser_names()
            ]
        self._alternatives = [
            alt
            for alt in policy.minimal_satisfying_sets()
            if all(org in self._peers_by_org for org in alt)
        ]
        if not self._alternatives:
            raise ValueError(
                f"policy {policy.to_expression()} has no satisfiable alternative "
                f"with orgs {sorted(self._peers_by_org)}"
            )
        self._weights = zipf_weights(len(self._alternatives), self._selection_skew)
        # Hot-path caches: the selection draw goes through a precomputed-CDF
        # sampler (bit-identical to ``choice(n, p=weights)``, built once),
        # and the endorsement service time per (contract, activity) pair is
        # a pure function of static config, so it is computed at most once.
        # Under the batch kernel tier the sampler prefetches uniforms in
        # vectorized blocks — safe because "endorser-selection" is a
        # dedicated stream with this sampler as its only consumer, and
        # bit-identical because array fills and scalar draws consume the
        # PCG64 stream identically (see WeightedSampler.draw_array).
        from repro.sim.batch import BatchKernel

        self._selection = WeightedSampler(
            rng.stream("endorser-selection"),
            self._weights,
            prefetch=256 if isinstance(kernel, BatchKernel) else 0,
        )
        self._service_time_cache: dict[tuple[str, str], float] = {}

    def servers(self) -> list[Server]:
        """Every endorsing peer (for utilization reporting)."""
        return [p for peers in self._peers_by_org.values() for p in peers]

    def peers(self, target: str | None = None) -> list[Server]:
        """Resolve an intervention target to endorsing peers.

        ``None`` means every peer; an organization name means that org's
        peers; otherwise ``target`` must be a full peer name like
        ``Org1-peer0``.
        """
        if target is None:
            return self.servers()
        if target in self._peers_by_org:
            return list(self._peers_by_org[target])
        for peer in self.servers():
            if peer.name == target:
                return [peer]
        raise KeyError(
            f"unknown endorser target {target!r}; expected an org "
            f"({sorted(self._peers_by_org)}) or a peer name"
        )

    def select_orgs(self) -> frozenset[str]:
        """Choose the endorsing orgs for one transaction."""
        return self._alternatives[self._selection.draw()]

    def _least_loaded_peer(self, org: str) -> Server | None:
        """The org's least busy *reachable* peer, or ``None`` if all are down."""
        peers = [p for p in self._peers_by_org[org] if p.enabled]
        if not peers:
            return None
        return min(peers, key=lambda p: p.busy_until)

    def endorse(
        self,
        tx: Transaction,
        on_done: Callable[[float], None],
        on_abort: Callable[[float, str], None],
    ) -> None:
        """Run the endorsement phase for ``tx``.

        Fills ``tx.endorsers`` / ``tx.missing_endorsements`` / ``tx.rwset``
        and calls ``on_done(time)`` when the slowest endorsement returns to
        the client, or ``on_abort(time, reason)`` if the chaincode
        early-aborts the transaction (pruned contracts).
        """
        orgs = sorted(self.select_orgs())
        endorsing: list[tuple[str, Server]] = []
        missing: list[str] = []
        reasons: list[str] = []
        for org in orgs:
            peer = self._least_loaded_peer(org)
            if peer is None:
                missing.append(org)
                reasons.append("crashed")
            elif peer.queue_delay() > self._timing.endorse_timeout:
                missing.append(org)
                reasons.append("timeout")
            else:
                endorsing.append((org, peer))

        tx.missing_endorsements = tuple(missing)
        tx.missing_reasons = tuple(reasons)
        if not endorsing:
            # Every selected org timed out or crashed; the client submits an
            # envelope with no endorsements at all, doomed to a policy failure.
            tx.endorsers = ()
            self._kernel.schedule_in(
                self._conditions.network_delay(tx.invoker_org),
                lambda: on_done(self._kernel.now),
            )
            return

        tx.endorsers = tuple(peer.name for _, peer in endorsing)
        # The earliest-starting peer executes the chaincode and produces the
        # read-write set (endorsers are deterministic, so one execution
        # stands for all).
        executor = min(endorsing, key=lambda item: item[1].busy_until)[1]
        pending = len(endorsing)
        aborted: list[str] = []
        cache_key = (tx.contract, tx.activity)
        service_time = self._service_time_cache.get(cache_key)
        if service_time is None:
            contract = self._contracts.get(tx.contract)
            cost = contract.cost_factor(tx.activity) if contract is not None else 1.0
            service_time = self._timing.endorse_per_tx * cost
            self._service_time_cache[cache_key] = service_time

        def execute(start_time: float) -> None:
            del start_time
            try:
                self._execute_chaincode(tx)
            except ChaincodeAbort as abort:
                aborted.append(str(abort))

        def peer_done(finish_time: float) -> None:
            nonlocal pending
            pending -= 1
            if pending > 0:
                return
            done_at = finish_time + self._conditions.network_delay(tx.invoker_org)
            if aborted:
                self._kernel.schedule(done_at, lambda: on_abort(self._kernel.now, aborted[0]))
            else:
                self._kernel.schedule(done_at, lambda: on_done(self._kernel.now))

        for _, peer in endorsing:
            on_start = execute if peer is executor else None
            peer.submit(service_time, peer_done, on_start=on_start)

    def _execute_chaincode(self, tx: Transaction) -> None:
        contract = self._contracts.get(tx.contract)
        if contract is None:
            raise ChaincodeAbort(f"unknown contract {tx.contract!r}")
        ctx = ChaincodeContext(
            state=self._state_db.namespace(tx.contract),
            invoker=tx.invoker_client,
            nonce=tx.tx_id,
        )
        contract.invoke(ctx, tx.activity, tx.args)
        tx.rwset = ctx.rwset
        tx.endorse_time = self._kernel.now
