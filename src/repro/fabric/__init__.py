"""Simulated Hyperledger Fabric substrate.

A deterministic discrete-event model of Fabric 2.2's execute-order-validate
(EOV) pipeline, faithful in the dimensions BlockOptR observes and optimizes:

* **Execute** — clients pick endorsers per the endorsement policy; endorsing
  peers run chaincode against the *committed* world state, producing
  read-write sets with per-key read versions.
* **Order** — a Raft-style ordering service cuts blocks on transaction
  count, timeout, or byte size, with per-block and per-transaction service
  cost (pluggable reordering schedulers model Fabric++ / FabricSharp).
* **Validate** — peers check endorsement signatures against the policy and
  the read set against current state versions (MVCC read conflicts, phantom
  read conflicts); *every* transaction, failed or not, is appended to the
  ledger — the data source BlockOptR mines.
"""

from repro.fabric.chaincode import ChaincodeContext, Contract, contract_function
from repro.fabric.config import NetworkConfig, OrgConfig, TimingConfig
from repro.fabric.ledger import Block, Ledger
from repro.fabric.network import FabricNetwork, run_workload
from repro.fabric.policy import EndorsementPolicy, parse_policy
from repro.fabric.results import RunResult, summarize_run
from repro.fabric.state import VersionedValue, WorldState
from repro.fabric.verify import SerializabilityReport, verify_serializability
from repro.fabric.transaction import (
    RangeQueryInfo,
    ReadWriteSet,
    Transaction,
    TxStatus,
    TxType,
    Version,
)

__all__ = [
    "Block",
    "ChaincodeContext",
    "Contract",
    "EndorsementPolicy",
    "FabricNetwork",
    "Ledger",
    "NetworkConfig",
    "OrgConfig",
    "RangeQueryInfo",
    "ReadWriteSet",
    "RunResult",
    "SerializabilityReport",
    "TimingConfig",
    "Transaction",
    "TxStatus",
    "TxType",
    "Version",
    "VersionedValue",
    "WorldState",
    "contract_function",
    "parse_policy",
    "run_workload",
    "summarize_run",
    "verify_serializability",
]
