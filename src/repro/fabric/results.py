"""Run-level performance summaries.

Mirrors what the paper reports for every experiment: *success throughput*
(committed successful transactions per second of run makespan), *average
latency* of successful transactions (client submission to block commit),
and *success rate* (successful / all issued, early aborts included).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fabric.ledger import Ledger
from repro.fabric.transaction import Transaction, TxStatus


@dataclass
class RunResult:
    """Outcome of one simulated workload execution."""

    ledger: Ledger
    total_issued: int
    success_count: int
    failure_counts: dict[str, int]
    makespan: float
    success_throughput: float
    avg_latency: float
    p95_latency: float
    success_rate: float
    blocks: int
    avg_block_size: float
    cut_reasons: dict[str, int] = field(default_factory=dict)
    utilization: dict[str, float] = field(default_factory=dict)
    early_aborts: int = 0

    def summary_row(self) -> dict[str, float]:
        """The three headline numbers, as the paper's figures report them."""
        return {
            "success_throughput_tps": round(self.success_throughput, 1),
            "avg_latency_s": round(self.avg_latency, 2),
            "success_rate_pct": round(self.success_rate * 100.0, 1),
        }

    def __str__(self) -> str:  # pragma: no cover - convenience
        row = self.summary_row()
        return (
            f"tput={row['success_throughput_tps']} tps "
            f"lat={row['avg_latency_s']} s "
            f"success={row['success_rate_pct']}%"
        )


def summarize_run(
    ledger: Ledger,
    aborted: list[Transaction],
    first_submit: float,
    last_commit: float,
    cut_reasons: dict[str, int] | None = None,
    utilization: dict[str, float] | None = None,
) -> RunResult:
    """Compute a :class:`RunResult` from a completed run's artifacts."""
    committed = [tx for tx in ledger.transactions(include_config=False)]
    all_txs = committed + aborted
    total = len(all_txs)

    failure_counts: dict[str, int] = {}
    latencies: list[float] = []
    success = 0
    submitted = 0
    for tx in all_txs:
        status = tx.status if tx.status is not None else TxStatus.EARLY_ABORT
        # Endorsement-phase aborts never reach the ordering service; like
        # Caliper, the success rate is computed over submitted transactions
        # only (the aborts are still reported via ``early_aborts``).
        if tx.abort_stage != "endorsement":
            submitted += 1
        if status is TxStatus.SUCCESS:
            success += 1
            if tx.latency is not None:
                latencies.append(tx.latency)
        else:
            failure_counts[status.value] = failure_counts.get(status.value, 0) + 1

    makespan = max(last_commit - first_submit, 1e-9)
    latencies.sort()
    avg_latency = sum(latencies) / len(latencies) if latencies else 0.0
    p95 = latencies[int(0.95 * (len(latencies) - 1))] if latencies else 0.0

    data_blocks = [block for block in ledger if any(not tx.is_config for tx in block.transactions)]
    avg_block_size = (
        sum(len(block) for block in data_blocks) / len(data_blocks) if data_blocks else 0.0
    )

    return RunResult(
        ledger=ledger,
        total_issued=total,
        success_count=success,
        failure_counts=failure_counts,
        makespan=makespan,
        success_throughput=success / makespan,
        avg_latency=avg_latency,
        p95_latency=p95,
        success_rate=success / submitted if submitted else 0.0,
        blocks=len(data_blocks),
        avg_block_size=avg_block_size,
        cut_reasons=dict(cut_reasons or {}),
        utilization=dict(utilization or {}),
        early_aborts=len(aborted),
    )
