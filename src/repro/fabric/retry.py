"""Client-side retry / resubmission policy.

Real Fabric clients (Caliper workers, gateway SDKs) do not give up after
one ``MVCC_READ_CONFLICT``: they resubmit the transaction, which re-runs
the chaincode against the *current* committed state — a brand-new
read-write set — and adds genuine follow-on load to every pipeline stage.
The seed reproduction modeled fire-and-forget clients only, understating
contention; a :class:`RetryPolicy` on
:class:`~repro.fabric.config.NetworkConfig` turns failures into that
realistic retry traffic.

Semantics (see docs/FAILURES.md for the taxonomy interaction):

* a transaction whose final status is a failure is resubmitted as a *new*
  proposal after a deterministic exponential backoff, up to
  ``max_attempts`` total attempts per logical transaction;
* resubmission re-enters the pipeline at the proposal stage: fresh client
  occupancy, fresh endorsement, fresh read-write set
  (*resubmit-as-new-read-set* semantics — the retry can succeed precisely
  because it re-reads);
* chaincode-level early aborts (``abort_stage == "endorsement"``) are
  **not** retried: the contract deterministically rejects the arguments,
  so a retry would fail identically.

Determinism: the backoff is a pure function of the attempt number unless
``jitter`` is positive, in which case the perturbation is drawn from the
dedicated ``client-retry`` :class:`~repro.sim.rng.SimRng` stream — the
same seed therefore reproduces the exact retry traffic, which
``tests/test_retry_model.py`` pins down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class RetryPolicy:
    """How a client resubmits failed transactions.

    ``max_attempts`` counts *total* attempts per logical transaction, the
    original submission included; ``1`` disables retries entirely (the
    seed behaviour).  The backoff before attempt ``n+1`` is
    ``backoff_base * backoff_multiplier**(n-1)`` seconds, optionally
    perturbed by up to ``±jitter`` (a fraction) drawn deterministically
    from the simulation's seeded RNG.
    """

    max_attempts: int = 3
    backoff_base: float = 0.25
    backoff_multiplier: float = 2.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base <= 0:
            raise ValueError(f"backoff_base must be positive, got {self.backoff_base}")
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def delay(self, failed_attempts: int, uniform: Callable[[], float] | None = None) -> float:
        """Backoff (seconds) before the attempt after ``failed_attempts``.

        ``uniform`` supplies draws on ``[0, 1)`` for the jitter term; it is
        only consulted when ``jitter > 0``, so jitter-free policies touch
        no RNG stream at all.
        """
        if failed_attempts < 1:
            raise ValueError(f"failed_attempts must be >= 1, got {failed_attempts}")
        backoff = self.backoff_base * self.backoff_multiplier ** (failed_attempts - 1)
        if self.jitter > 0.0 and uniform is not None:
            backoff *= 1.0 + self.jitter * (2.0 * uniform() - 1.0)
        return backoff

    def to_dict(self) -> dict:
        """JSON-able form (cache payloads, forensics reports)."""
        return {
            "max_attempts": self.max_attempts,
            "backoff_base": self.backoff_base,
            "backoff_multiplier": self.backoff_multiplier,
            "jitter": self.jitter,
        }

    @staticmethod
    def from_dict(data: dict) -> "RetryPolicy":
        """Inverse of :meth:`to_dict`."""
        try:
            return RetryPolicy(**data)
        except TypeError as exc:
            raise ValueError(f"malformed retry policy: {exc}") from exc
