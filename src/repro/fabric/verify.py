"""Post-hoc correctness verification of a finished run.

The whole point of Fabric's MVCC validation is serializability: the
committed (successful) transactions must be equivalent to some serial
execution.  :func:`verify_serializability` re-executes exactly the
successful transactions of a ledger, one at a time in commit order,
against a fresh state database — if the final world state matches the
network's, the concurrent run was serializable.

Used by the property-based test suite as the substrate's ground-truth
oracle, and exposed publicly because it is a useful debugging tool for
anyone extending the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fabric.chaincode import ChaincodeAbort, Contract
from repro.fabric.chaincode import ChaincodeContext
from repro.fabric.network import FabricNetwork
from repro.fabric.state import StateDatabase
from repro.fabric.transaction import Transaction, TxStatus, Version


@dataclass
class SerializabilityReport:
    """Outcome of a serializability check."""

    ok: bool
    transactions_replayed: int
    mismatched_keys: list[tuple[str, str]] = field(default_factory=list)
    #: Keys present in only one of the two states: (namespace, key, side).
    missing_keys: list[tuple[str, str, str]] = field(default_factory=list)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


def _serial_replay(
    contracts: dict[str, Contract], transactions: list[Transaction]
) -> StateDatabase:
    """Execute ``transactions`` serially against a fresh state database."""
    state_db = StateDatabase()
    for contract in contracts.values():
        contract.setup(state_db.namespace(contract.name))
    for index, tx in enumerate(transactions):
        contract = contracts[tx.contract]
        ctx = ChaincodeContext(
            state=state_db.namespace(tx.contract),
            invoker=tx.invoker_client,
            nonce=tx.tx_id,
        )
        try:
            contract.invoke(ctx, tx.activity, tx.args)
        except ChaincodeAbort:
            # A tx that committed concurrently but aborts serially would be
            # a genuine anomaly; surface it by skipping its writes (the
            # final-state comparison will then fail).
            continue
        version = Version(block=1, tx=index)
        for key, value in ctx.rwset.writes.items():
            state_db.namespace(tx.contract).put(key, value, version)
    return state_db


def verify_serializability(network: FabricNetwork) -> SerializabilityReport:
    """Check that the committed history equals its serial re-execution.

    Compares every namespace's final (key -> value) mapping; versions are
    ignored (they encode physical placement, not logical content).
    """
    successful = [
        tx
        for tx in network.ledger.transactions(include_config=False)
        if tx.status is TxStatus.SUCCESS
    ]
    # Rebuild fresh contract instances via their classes to avoid any state
    # captured on the originals.
    contracts = dict(network.contracts)
    serial_db = _serial_replay(contracts, successful)

    mismatched: list[tuple[str, str]] = []
    missing: list[tuple[str, str, str]] = []
    namespaces = set(network.state_db.namespaces()) | set(serial_db.namespaces())
    for namespace in sorted(namespaces):
        concurrent = network.state_db.namespace(namespace)
        serial = serial_db.namespace(namespace)
        keys = set(concurrent.keys()) | set(serial.keys())
        for key in sorted(keys):
            concurrent_entry = concurrent.get(key)
            serial_entry = serial.get(key)
            if concurrent_entry is None:
                missing.append((namespace, key, "serial-only"))
            elif serial_entry is None:
                missing.append((namespace, key, "concurrent-only"))
            elif concurrent_entry.value != serial_entry.value:
                mismatched.append((namespace, key))
    ok = not mismatched and not missing
    return SerializabilityReport(
        ok=ok,
        transactions_replayed=len(successful),
        mismatched_keys=mismatched,
        missing_keys=missing,
    )
