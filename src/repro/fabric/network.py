"""End-to-end network orchestration.

:class:`FabricNetwork` wires clients, endorsers, the ordering service and
the validation pipeline onto one simulation kernel and drives a workload
through the full execute-order-validate lifecycle:

1. at its scheduled submit time a request occupies its client (proposal);
2. the endorsement phase runs on the selected orgs' peers, snapshotting the
   committed state at execution start;
3. the client packages the endorsed envelope and submits it to ordering;
4. the block cutter batches envelopes; each block costs ordering service
   time, then validation + commit time, after which statuses are final and
   the block — failures included — is on the ledger.

The genesis block (block 0) carries a config transaction recording block
count, block timeout and the endorsement policy, so that BlockOptR can
later *extract the configuration from the ledger*, as the paper does.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.fabric.chaincode import Contract
from repro.fabric.client import ClientPool
from repro.fabric.conditions import NetworkConditions
from repro.fabric.config import NetworkConfig
from repro.fabric.endorser import EndorserPool
from repro.fabric.ledger import Block, Ledger
from repro.fabric.orderer import OrderingService
from repro.fabric.policy import parse_policy
from repro.fabric.reorder import make_scheduler
from repro.fabric.results import RunResult, summarize_run
from repro.fabric.state import StateDatabase
from repro.fabric.transaction import Transaction, TxRequest, TxStatus
from repro.fabric.validator import ValidationPipeline, rwset_conflict
from repro.sim.batch import make_kernel, resolve_kernel_tier
from repro.sim.rng import SimRng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.logs.stream import RunStream
    from repro.scenario.spec import ScenarioSpec


@dataclass(frozen=True)
class StreamedRunStats:
    """Headline accounting of one streamed run (no ledger to re-read)."""

    issued: int
    committed: int
    aborted: int
    blocks: int
    data_blocks: int
    retries_issued: int
    retries_recovered: int
    retries_exhausted: int
    first_submit: float
    last_commit: float

    @property
    def makespan(self) -> float:
        """Wall-clock span from first submission to last commit."""
        return max(0.0, self.last_commit - self.first_submit)


class FabricNetwork:
    """A simulated Fabric network ready to execute workloads.

    An optional :class:`~repro.scenario.spec.ScenarioSpec` turns the
    static network into a dynamic one: its interventions are installed on
    the kernel's intervention lane at construction time and its workload
    transforms are applied to the requests in :meth:`run`.
    """

    def __init__(
        self,
        config: NetworkConfig,
        contracts: list[Contract],
        scenario: "ScenarioSpec | None" = None,
        stream: "RunStream | None" = None,
    ) -> None:
        if not contracts:
            raise ValueError("a network needs at least one smart contract")
        if (
            stream is not None
            and scenario is not None
            and scenario.workload_interventions()
        ):
            raise ValueError(
                "streaming runs do not support workload-transform interventions: "
                "they need the full request list (apply the transforms to the "
                "request iterable up front and pass a network-only scenario)"
            )
        self.config = config
        #: The resolved kernel tier ("reference" or "batch"): the config
        #: wins when set, else the ``REPRO_KERNEL`` environment variable.
        #: Both tiers are bit-identical (see :mod:`repro.sim.batch`).
        self.kernel_tier = resolve_kernel_tier(config.kernel_tier)
        self.kernel = make_kernel(self.kernel_tier)
        self.rng = SimRng(config.seed)
        self.conditions = NetworkConditions(config.timing)
        self.policy = parse_policy(config.endorsement_policy)
        unknown = self.policy.organizations() - set(config.org_names())
        if unknown:
            raise ValueError(
                f"policy references organizations missing from the network: {sorted(unknown)}"
            )
        self.state_db = StateDatabase()
        self.stream = stream
        if stream is not None:
            from repro.logs.stream import StreamingLedger

            if self.kernel_tier == "batch":
                stream.enable_batch_fanout()
            self.ledger: Ledger = StreamingLedger(stream)  # type: ignore[assignment]
        else:
            self.ledger = Ledger()
        self.contracts = {contract.name: contract for contract in contracts}
        if len(self.contracts) != len(contracts):
            raise ValueError("duplicate contract names")
        for contract in contracts:
            contract.setup(self.state_db.namespace(contract.name))

        self.clients = ClientPool(self.kernel, config)
        self.endorsers = EndorserPool(
            self.kernel,
            config,
            self.policy,
            self.state_db,
            self.contracts,
            self.rng,
            conditions=self.conditions,
        )
        # The "reorder" mitigation swaps in the abort-free conflict-aware
        # scheduler; every other mitigation leaves the configured one.
        scheduler_name = (
            "conflict_aware" if config.mitigation == "reorder" else config.scheduler
        )
        self._scheduler = make_scheduler(scheduler_name, config.scheduler_window)
        self.validator = ValidationPipeline(
            self.kernel,
            config,
            self.policy,
            self.state_db,
            self.ledger,
            on_block_committed=self._after_block,
        )
        self.orderer = OrderingService(
            self.kernel,
            config,
            self._scheduler,
            deliver=self._deliver_block,
            early_abort=self._record_early_abort,
            conditions=self.conditions,
        )
        #: Aborted transactions (batch mode only; streaming fans them out).
        self.aborted: list[Transaction] = []
        self.aborted_count = 0
        self._tx_counter = 0
        self._retry = config.retry
        self._mitigation = config.mitigation
        #: Retry-traffic counters (see docs/FAILURES.md): resubmissions
        #: issued, retries that ultimately committed, and logical
        #: transactions whose final allowed attempt still failed.
        self.retries_issued = 0
        self.retries_recovered = 0
        self.retries_exhausted = 0
        # Admission-pacing state (the controller's rate throttle): a FIFO
        # of deferred requests, the next free admission slot, and whether
        # a drain event is already on the kernel.
        self._pace_queue: deque[TxRequest] = deque()
        self._pace_slot = 0.0
        self._pace_draining = False
        self._append_genesis()

        self.scenario_engine = None
        if scenario is not None:
            from repro.scenario.engine import ScenarioEngine

            self.scenario_engine = ScenarioEngine(scenario)
            self.scenario_engine.install(self)

        #: The SLO-guardian controller (:mod:`repro.control`), installed
        #: only when the config carries a ControlSpec — ``None`` keeps
        #: this network byte-identical to a controller-less build.
        self.controller = None
        if config.control is not None:
            from repro.control.controller import SLOGuardian

            self.controller = SLOGuardian(self, config.control)
            self.controller.install()

    # -- live actuation seams ---------------------------------------------------

    @property
    def mitigation(self) -> str:
        """The mitigation currently in effect (live, controller-adjustable)."""
        return self._mitigation

    @property
    def retry_policy(self):
        """The retry policy currently in effect (``None`` = no retries)."""
        return self._retry

    def set_mitigation(self, mitigation: str) -> None:
        """Switch the live mitigation strategy mid-run.

        Affects transactions from this kernel instant on: ``early_abort``
        gates the *next* packaging checks, and the reorder scheduler swap
        applies to the *next* block cut.  The shared config is untouched —
        it may be reused by offline re-runs.
        """
        from repro.fabric.config import MITIGATIONS

        if mitigation not in MITIGATIONS:
            raise ValueError(
                f"unknown mitigation {mitigation!r}; known: {', '.join(MITIGATIONS)}"
            )
        self._mitigation = mitigation
        scheduler_name = (
            "conflict_aware" if mitigation == "reorder" else self.config.scheduler
        )
        self._scheduler = make_scheduler(scheduler_name, self.config.scheduler_window)
        self.orderer.set_scheduler(self._scheduler)

    def set_retry_policy(self, policy) -> None:
        """Replace the live client retry policy (``None`` disables retries)."""
        self._retry = policy

    # -- lifecycle -------------------------------------------------------------

    def _append_genesis(self) -> None:
        config_tx = Transaction(
            tx_id="config-0",
            client_timestamp=0.0,
            activity="__config__",
            args=(
                ("block_count", self.config.block_count),
                ("block_timeout", self.config.block_timeout),
                ("block_bytes", self.config.block_bytes),
                ("endorsement_policy", self.config.endorsement_policy),
            ),
            contract="__channel__",
            invoker_client="admin",
            invoker_org="OrdererOrg",
            is_config=True,
            status=TxStatus.SUCCESS,
            commit_time=0.0,
            block_number=0,
        )
        genesis = Block(
            number=0,
            transactions=[config_tx],
            previous_hash=Ledger.GENESIS_HASH,
            cut_reason="genesis",
            created_at=0.0,
            committed_at=0.0,
        )
        self.ledger.append(genesis)

    def _next_tx_id(self) -> str:
        self._tx_counter += 1
        return f"tx-{self._tx_counter:06d}"

    # -- pipeline stages --------------------------------------------------------

    def submit_request(self, request: TxRequest) -> None:
        """Schedule ``request`` for execution at its submit time."""
        self.kernel.schedule(request.submit_time, lambda: self._start_request(request))

    def _start_request(self, request: TxRequest) -> None:
        # Admission pacing (the controller's rate throttle).  Uncapped
        # with an empty queue — the default — this is a straight
        # passthrough, so controller-off runs are byte-identical.  Under
        # a cap, requests join a FIFO queue drained one per ``1 / cap``
        # seconds; the cap is re-read at every drain, so relaxing it
        # speeds the drain up and clearing it flushes the whole backlog
        # at the next slot instead of leaving work booked far out.
        if self.conditions.send_rate_cap is None and not self._pace_queue:
            self._start_request_now(request)
            return
        self._pace_queue.append(request)
        self._schedule_drain()

    def _schedule_drain(self) -> None:
        """Arm one drain event at the next admission slot (idempotent)."""
        if self._pace_draining or not self._pace_queue:
            return
        self._pace_draining = True
        now = self.kernel.now
        when = self._pace_slot if self._pace_slot > now else now
        self.kernel.schedule(when, self._drain_paced)

    def _drain_paced(self) -> None:
        """Admit the oldest deferred request and book the next slot."""
        self._pace_draining = False
        if not self._pace_queue:
            return
        request = self._pace_queue.popleft()
        cap = self.conditions.send_rate_cap
        if cap is not None:
            self._pace_slot = self.kernel.now + 1.0 / cap
        else:
            self._pace_slot = self.kernel.now
        self._start_request_now(request)
        self._schedule_drain()

    def _start_request_now(self, request: TxRequest) -> None:
        client = self.clients.assign(request.invoker_org)
        tx = Transaction(
            tx_id=self._next_tx_id(),
            client_timestamp=self.kernel.now,
            activity=request.activity,
            args=tuple(request.args),
            contract=request.contract,
            invoker_client=client.name,
            invoker_org=self.clients.org_of(client.name),
            attempt=request.attempt,
            retry_of=request.retry_of,
        )

        def proposal_done(finish: float) -> None:
            del finish
            self.kernel.schedule_in(
                self.conditions.network_delay(tx.invoker_org),
                lambda: self._endorse(tx, client),
            )

        self.clients.propose(client, proposal_done)

    def _endorse(self, tx: Transaction, client) -> None:
        def endorsed(at: float) -> None:
            del at

            def packaged(finish: float) -> None:
                del finish
                if self._mitigation == "early_abort" and self._abort_if_stale(tx):
                    return
                self.kernel.schedule_in(
                    self.conditions.network_delay(tx.invoker_org),
                    lambda: self.orderer.submit(tx),
                )

            self.clients.package(client, len(tx.endorsers), packaged)

        def aborted(at: float, reason: str) -> None:
            del reason
            tx.status = TxStatus.EARLY_ABORT
            tx.abort_stage = "endorsement"
            tx.commit_time = at
            self._record_abort(tx)
            # No retry: the chaincode deterministically rejects these
            # arguments, so a resubmission would abort identically.

        self.endorsers.endorse(tx, on_done=endorsed, on_abort=aborted)

    def _abort_if_stale(self, tx: Transaction) -> bool:
        """The ``early_abort`` mitigation: drop a doomed envelope at the client.

        At packaging time the client re-checks the endorsed read set
        against the *currently committed* state — the same check the
        validator will run after ordering.  A transaction that already
        conflicts cannot possibly validate (versions only move forward),
        so submitting it would waste ordering and block space; it is
        aborted here and, when a retry policy is active, resubmitted with
        a fresh read set.  Returns True when the transaction was dropped.
        """
        if tx.endorsers == ():
            return False  # doomed to a policy failure, not a stale read
        namespace = self.state_db.namespace(tx.contract)
        verdict = rwset_conflict(namespace, tx.rwset)
        if verdict is None:
            return False
        _, key = verdict
        tx.status = TxStatus.EARLY_ABORT
        tx.abort_stage = "stale_read"
        tx.conflict_key = key
        tx.commit_time = self.kernel.now
        self._record_abort(tx)
        self._maybe_retry(tx)
        return True

    def _record_early_abort(self, tx: Transaction, at: float) -> None:
        tx.status = TxStatus.EARLY_ABORT
        tx.abort_stage = "ordering"
        tx.commit_time = at
        self._record_abort(tx)
        self._maybe_retry(tx)

    def _record_abort(self, tx: Transaction) -> None:
        """Account one never-committed transaction.

        Batch mode retains it for post-processing; streaming mode fans it
        out to the stream's transaction consumers and lets it go.
        """
        self.aborted_count += 1
        if self.stream is not None:
            self.stream.accept_abort(tx)
        else:
            self.aborted.append(tx)
            if self.controller is not None:
                self.controller.monitor.consume(tx)

    def _after_block(self, block: Block) -> None:
        """Post-commit hook: account retry outcomes, resubmit failures."""
        feed = self.controller is not None and self.stream is None
        for tx in block.transactions:
            if tx.is_config:
                continue
            if feed:
                self.controller.monitor.consume(tx)
            if tx.status is TxStatus.SUCCESS:
                if tx.attempt > 1:
                    self.retries_recovered += 1
            else:
                self._maybe_retry(tx)

    def _maybe_retry(self, tx: Transaction) -> None:
        """Resubmit a failed transaction under the configured retry policy."""
        if self._retry is None:
            return
        if tx.attempt >= self._retry.max_attempts:
            self.retries_exhausted += 1
            return
        uniform = (
            (lambda: float(self.rng.stream("client-retry").random()))
            if self._retry.jitter > 0.0
            else None
        )
        delay = self._retry.delay(tx.attempt, uniform)
        self.retries_issued += 1
        self.submit_request(
            TxRequest(
                submit_time=self.kernel.now + delay,
                activity=tx.activity,
                args=tuple(tx.args),
                contract=tx.contract,
                invoker_org=tx.invoker_org,
                attempt=tx.attempt + 1,
                retry_of=tx.retry_of or tx.tx_id,
            )
        )

    def _deliver_block(self, transactions: list[Transaction], cut_reason: str, at: float) -> None:
        del at
        self.validator.receive_block(transactions, cut_reason)

    # -- running ----------------------------------------------------------------

    def run(self, requests: list[TxRequest]) -> RunResult:
        """Execute a workload to completion and summarize it."""
        if self.stream is not None:
            raise ValueError("use run_streamed() on a stream-mode network")
        if not requests:
            raise ValueError("empty workload")
        if self.scenario_engine is not None:
            requests = self.scenario_engine.transform_requests(requests)
        ordered = sorted(requests, key=lambda r: r.submit_time)
        for request in ordered:
            self.submit_request(request)
        self.kernel.run()

        committed = [tx for tx in self.ledger.transactions(include_config=False)]
        accounted = len(committed) + len(self.aborted)
        issued = len(requests) + self.retries_issued
        if accounted != issued:
            raise RuntimeError(
                f"transaction accounting mismatch: {accounted} finished "
                f"of {issued} issued ({self.retries_issued} retries)"
            )

        first_submit = ordered[0].submit_time
        last_commit = max(
            (tx.commit_time for tx in committed if tx.commit_time is not None),
            default=first_submit,
        )
        self._assign_commit_order()
        return summarize_run(
            ledger=self.ledger,
            aborted=self.aborted,
            first_submit=first_submit,
            last_commit=last_commit,
            cut_reasons=self.orderer.cut_reasons,
            utilization=self._utilization(last_commit),
        )

    def run_streamed(self, requests: Iterable[TxRequest]) -> StreamedRunStats:
        """Execute a submit-time-ordered request *stream* to completion.

        The counterpart of :meth:`run` for stream-mode networks: requests
        are pulled from the iterator one at a time — each arrival event
        schedules the next — so neither the request list nor the ledger
        is ever materialized.  With the accumulators registered on the
        :class:`~repro.logs.stream.RunStream`, a run's live state is the
        in-flight transactions plus O(blocks) bookkeeping, independent of
        how many transactions flow through.
        """
        if self.stream is None:
            raise ValueError("run_streamed() needs a network built with a RunStream")
        iterator: Iterator[TxRequest] = iter(requests)
        first = next(iterator, None)
        if first is None:
            raise ValueError("empty workload")
        issued = 0
        first_submit = first.submit_time

        # Arrivals ride the dedicated arrival lane so same-instant ties
        # against dynamic pipeline events resolve exactly as in a batch
        # run, where every arrival is pre-scheduled (see ARRIVAL_PRIORITY).
        from repro.sim.kernel import ARRIVAL_PRIORITY

        def pump(request: TxRequest) -> None:
            nonlocal issued
            issued += 1
            self._start_request(request)
            upcoming = next(iterator, None)
            if upcoming is not None:
                if upcoming.submit_time < request.submit_time:
                    raise ValueError(
                        "request stream must be ordered by submit time: "
                        f"{upcoming.submit_time} after {request.submit_time}"
                    )
                self.kernel.schedule(
                    upcoming.submit_time,
                    lambda: pump(upcoming),
                    priority=ARRIVAL_PRIORITY,
                )

        self.kernel.schedule(first_submit, lambda: pump(first), priority=ARRIVAL_PRIORITY)
        self.kernel.run()

        ledger = self.ledger
        accounted = ledger.committed_txs + self.aborted_count
        total_issued = issued + self.retries_issued
        if accounted != total_issued:
            raise RuntimeError(
                f"transaction accounting mismatch: {accounted} finished "
                f"of {total_issued} issued ({self.retries_issued} retries)"
            )
        last_commit = (
            ledger.last_commit_time
            if ledger.last_commit_time is not None
            else first_submit
        )
        return StreamedRunStats(
            issued=issued,
            committed=ledger.committed_txs,
            aborted=self.aborted_count,
            blocks=ledger.blocks_committed,
            data_blocks=ledger.data_blocks,
            retries_issued=self.retries_issued,
            retries_recovered=self.retries_recovered,
            retries_exhausted=self.retries_exhausted,
            first_submit=first_submit,
            last_commit=last_commit,
        )

    def _assign_commit_order(self) -> None:
        order = 0
        for tx in self.ledger.transactions(include_config=False):
            tx.commit_order = order
            order += 1

    def _utilization(self, horizon: float) -> dict[str, float]:
        stats: dict[str, float] = {}
        for server in self.clients.servers() + self.endorsers.servers():
            stats[server.name] = server.stats.utilization(horizon)
        stats["orderer"] = self.orderer.server.stats.utilization(horizon)
        stats["validator"] = self.validator.server.stats.utilization(horizon)
        return stats


def run_workload(
    config: NetworkConfig,
    contracts: list[Contract],
    requests: list[TxRequest],
    scenario: "ScenarioSpec | None" = None,
) -> tuple[FabricNetwork, RunResult]:
    """Build a fresh network, run ``requests``, return (network, result).

    The paper restarts the Fabric network for every experiment; this helper
    is that restart.  ``scenario`` injects faults and dynamic network
    conditions into the run (see :mod:`repro.scenario`).
    """
    network = FabricNetwork(config, contracts, scenario=scenario)
    result = network.run(requests)
    return network, result
