"""Endorsement policies: AST, parser, evaluation, satisfying sets.

Supports the grammar used throughout the paper::

    P1: And(Org1, Or(Org2, Org3, Org4))
    P2: And(Or(Org1, Org2), Or(Org3, Org4))
    P3: Majority(Org1, ..., OrgN)
    P4: OutOf(2, Org1, Org2, Org3, Org4)

``Majority`` normalizes to ``OutOf(floor(n/2)+1, ...)``.  Besides boolean
evaluation over a set of collected endorsements, the module enumerates the
*minimal satisfying sets* — the alternatives a client can choose between —
which drives both endorser selection and the endorser-bottleneck analysis
(mandatory orgs appear in every alternative).
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable


class PolicyError(ValueError):
    """Raised for malformed policy expressions."""


@dataclass(frozen=True)
class EndorsementPolicy:
    """A parsed policy node.

    ``kind`` is one of ``"org"``, ``"and"``, ``"or"``, ``"outof"``.
    Leaves carry ``org``; ``outof`` carries the threshold ``m``.
    """

    kind: str
    org: str = ""
    m: int = 0
    children: tuple["EndorsementPolicy", ...] = ()

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def single(org: str) -> "EndorsementPolicy":
        """Leaf node: one organization's endorsement."""
        return EndorsementPolicy(kind="org", org=org)

    @staticmethod
    def and_(*children: "EndorsementPolicy") -> "EndorsementPolicy":
        """Conjunction: every child must be satisfied."""
        return EndorsementPolicy(kind="and", children=tuple(children))

    @staticmethod
    def or_(*children: "EndorsementPolicy") -> "EndorsementPolicy":
        """Disjunction: at least one child must be satisfied."""
        return EndorsementPolicy(kind="or", children=tuple(children))

    @staticmethod
    def out_of(m: int, *children: "EndorsementPolicy") -> "EndorsementPolicy":
        """Threshold: at least ``m`` of the children must be satisfied."""
        if not 0 < m <= len(children):
            raise PolicyError(f"OutOf threshold {m} invalid for {len(children)} children")
        return EndorsementPolicy(kind="outof", m=m, children=tuple(children))

    # -- semantics -------------------------------------------------------------

    def organizations(self) -> frozenset[str]:
        """All organizations mentioned anywhere in the policy."""
        if self.kind == "org":
            return frozenset((self.org,))
        orgs: set[str] = set()
        for child in self.children:
            orgs |= child.organizations()
        return frozenset(orgs)

    def is_satisfied_by(self, endorsing_orgs: Iterable[str]) -> bool:
        """Does the set of endorsing organizations satisfy the policy?"""
        orgs = frozenset(endorsing_orgs)
        return self._eval(orgs)

    def _eval(self, orgs: frozenset[str]) -> bool:
        if self.kind == "org":
            return self.org in orgs
        if self.kind == "and":
            return all(child._eval(orgs) for child in self.children)
        if self.kind == "or":
            return any(child._eval(orgs) for child in self.children)
        if self.kind == "outof":
            satisfied = sum(1 for child in self.children if child._eval(orgs))
            return satisfied >= self.m
        raise PolicyError(f"unknown policy kind {self.kind!r}")

    def minimal_satisfying_sets(self) -> tuple[frozenset[str], ...]:
        """All minimal org sets that satisfy the policy, smallest first.

        These are the alternatives clients choose among when selecting
        endorsers.  Deterministic order: by size, then lexicographically.
        """
        return _minimal_sets_cached(self)

    def mandatory_orgs(self) -> frozenset[str]:
        """Orgs present in *every* satisfying alternative.

        A mandatory org (e.g. Org1 under ``And(Org1, Or(...))``) is the
        structural cause of the endorsement bottlenecks the paper's
        *endorser restructuring* recommendation targets.
        """
        sets = self.minimal_satisfying_sets()
        if not sets:
            return frozenset()
        common = set(sets[0])
        for alternative in sets[1:]:
            common &= alternative
        return frozenset(common)

    def min_endorsements(self) -> int:
        """Size of the smallest satisfying set."""
        sets = self.minimal_satisfying_sets()
        if not sets:
            raise PolicyError("policy is unsatisfiable")
        return len(sets[0])

    def to_expression(self) -> str:
        """Render back to the paper's textual syntax."""
        if self.kind == "org":
            return self.org
        inner = ",".join(child.to_expression() for child in self.children)
        if self.kind == "and":
            return f"And({inner})"
        if self.kind == "or":
            return f"Or({inner})"
        return f"OutOf({self.m},{inner})"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_expression()


@lru_cache(maxsize=256)
def _minimal_sets_cached(policy: EndorsementPolicy) -> tuple[frozenset[str], ...]:
    orgs = sorted(policy.organizations())
    satisfying: list[frozenset[str]] = []
    # Policies in practice involve a handful of orgs, so the power-set walk
    # (smallest subsets first, with supersets of known solutions skipped)
    # stays tiny.
    for size in range(1, len(orgs) + 1):
        for combo in itertools.combinations(orgs, size):
            candidate = frozenset(combo)
            if any(existing <= candidate for existing in satisfying):
                continue
            if policy._eval(candidate):
                satisfying.append(candidate)
    satisfying.sort(key=lambda s: (len(s), sorted(s)))
    return tuple(satisfying)


_TOKEN_RE = re.compile(r"\s*([A-Za-z_][A-Za-z_0-9]*|\d+|[(),])")


def _tokenize(expression: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(expression):
        match = _TOKEN_RE.match(expression, pos)
        if match is None:
            remainder = expression[pos:].strip()
            if not remainder:
                break
            raise PolicyError(f"unexpected character at {expression[pos:]!r}")
        tokens.append(match.group(1))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[str]) -> None:
        self._tokens = tokens
        self._index = 0

    def _peek(self) -> str | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise PolicyError("unexpected end of policy expression")
        self._index += 1
        return token

    def _expect(self, token: str) -> None:
        actual = self._next()
        if actual != token:
            raise PolicyError(f"expected {token!r}, found {actual!r}")

    def parse(self) -> EndorsementPolicy:
        """Parse the full expression; reject trailing tokens."""
        policy = self._parse_node()
        if self._peek() is not None:
            raise PolicyError(f"trailing tokens starting at {self._peek()!r}")
        return policy

    def _parse_node(self) -> EndorsementPolicy:
        token = self._next()
        lowered = token.lower()
        if lowered in ("and", "or", "outof", "majority"):
            self._expect("(")
            if lowered == "outof":
                m_token = self._next()
                if not m_token.isdigit():
                    raise PolicyError(f"OutOf needs a numeric threshold, found {m_token!r}")
                self._expect(",")
                children = self._parse_children()
                return EndorsementPolicy.out_of(int(m_token), *children)
            children = self._parse_children()
            if lowered == "and":
                return EndorsementPolicy.and_(*children)
            if lowered == "or":
                return EndorsementPolicy.or_(*children)
            majority = len(children) // 2 + 1
            return EndorsementPolicy.out_of(majority, *children)
        if token.isdigit():
            raise PolicyError(f"unexpected number {token!r}")
        return EndorsementPolicy.single(token)

    def _parse_children(self) -> list[EndorsementPolicy]:
        children = [self._parse_node()]
        while True:
            token = self._next()
            if token == ")":
                return children
            if token != ",":
                raise PolicyError(f"expected ',' or ')', found {token!r}")
            children.append(self._parse_node())


def parse_policy(expression: str) -> EndorsementPolicy:
    """Parse a policy expression like ``And(Org1, Or(Org2, Org3))``.

    >>> parse_policy("OutOf(2, Org1, Org2, Org3)").min_endorsements()
    2
    """
    tokens = _tokenize(expression)
    if not tokens:
        raise PolicyError("empty policy expression")
    return _Parser(tokens).parse()


def standard_policy(name: str, num_orgs: int = 4) -> EndorsementPolicy:
    """The paper's named policies P1-P4 (plus the repo default P0).

    ``P0`` — our documented Table 2 default — is ``OutOf(1, all orgs)``:
    any single organization endorses, giving balanced minimal load.
    """
    orgs = [f"Org{i}" for i in range(1, num_orgs + 1)]
    if name == "P0":
        return parse_policy(f"OutOf(1,{','.join(orgs)})")
    if name == "P1":
        return parse_policy("And(Org1,Or(Org2,Org3,Org4))")
    if name == "P2":
        return parse_policy("And(Or(Org1,Org2),Or(Org3,Org4))")
    if name == "P3":
        return parse_policy(f"Majority({','.join(orgs)})")
    if name == "P4":
        return parse_policy(f"OutOf(2,{','.join(orgs)})")
    raise PolicyError(f"unknown standard policy {name!r}")
