"""Validation phase: policy check, MVCC check, phantom check, commit.

Every peer validates every transaction; since all peers hold identical
state and reach identical verdicts, one validation pipeline stands for the
network.  Transactions inside a block are validated *in order* against the
evolving state — a transaction reading a key written by an earlier
transaction in the same block fails with an intra-block MVCC conflict,
exactly as in Fabric.
"""

from __future__ import annotations

from typing import Callable

from repro.fabric.chaincode import MISSING_VERSION
from repro.fabric.config import NetworkConfig
from repro.fabric.ledger import Block, Ledger
from repro.fabric.policy import EndorsementPolicy
from repro.fabric.state import StateDatabase
from repro.fabric.transaction import ReadWriteSet, Transaction, TxStatus, Version
from repro.sim.kernel import Kernel
from repro.sim.resources import Server


def rwset_conflict(namespace, rwset: ReadWriteSet) -> tuple[TxStatus, str] | None:
    """Check a read-write set against the current committed state.

    Returns ``(status, key)`` for the first conflict found — the failure
    status Fabric's validator would assign and the key that caused it (for
    a phantom, the key whose range *membership* changed) — or ``None``
    when every read is still current.  Shared by the validation pipeline
    and the ``early_abort`` mitigation, which runs the same check at
    packaging time (see docs/FAILURES.md).
    """
    # Point reads: version must match current committed state.
    for key, read_version in rwset.reads.items():
        current = namespace.version(key)
        if read_version == MISSING_VERSION:
            if current is not None:
                return TxStatus.MVCC_CONFLICT, key
        elif current != read_version:
            return TxStatus.MVCC_CONFLICT, key

    # Range reads: membership change -> phantom, version change -> MVCC.
    for query in rwset.range_queries:
        current_scan = {
            key: entry.version for key, entry in namespace.range_scan(query.start, query.end)
        }
        recorded = dict(query.results)
        if set(current_scan) != set(recorded):
            changed = min(set(current_scan) ^ set(recorded))
            return TxStatus.PHANTOM_CONFLICT, changed
        for key, read_version in recorded.items():
            if current_scan[key] != read_version:
                return TxStatus.MVCC_CONFLICT, key
    return None


class ValidationPipeline:
    """Validates ordered blocks and commits them to ledger + world state."""

    def __init__(
        self,
        kernel: Kernel,
        config: NetworkConfig,
        policy: EndorsementPolicy,
        state_db: StateDatabase,
        ledger: Ledger,
        on_block_committed: Callable[[Block], None] | None = None,
    ) -> None:
        self._kernel = kernel
        self._timing = config.timing
        self._policy = policy
        self._state_db = state_db
        self._ledger = ledger
        self._on_block_committed = on_block_committed
        from repro.sim.batch import BatchKernel

        self._batch_tier = isinstance(kernel, BatchKernel)
        self._server = Server(kernel, "validator")
        self.status_counts: dict[TxStatus, int] = {status: 0 for status in TxStatus}
        # Policy evaluation is a pure function of the endorser-name tuple,
        # and workloads draw from a handful of endorser sets — memoizing it
        # removes a per-transaction set comprehension + policy tree walk.
        self._policy_cache: dict[tuple[str, ...], bool] = {}

    @property
    def server(self) -> Server:
        """The validation pipeline's server resource."""
        return self._server

    #: Extra validation cost per key observed through a range query, as a
    #: fraction of ``validate_per_tx`` — re-scanning ranges is what makes
    #: range-read-heavy workloads collapse the validation pipeline
    #: (Figure 11's RangeRead-heavy column).
    RANGE_KEY_COST = 0.15

    def _tx_cost_factor(self, tx: Transaction) -> float:
        range_keys = sum(len(query.results) for query in tx.rwset.range_queries)
        return 1.0 + self.RANGE_KEY_COST * range_keys

    def receive_block(self, transactions: list[Transaction], cut_reason: str) -> None:
        """An ordered batch arrives from the ordering service.

        The batch tier folds the block's validation cost in one sweep
        when no transaction carries range queries: every per-tx cost
        factor is then exactly 1.0, and a sequential sum of ``n`` ones is
        exactly ``float(n)`` (integers are exact in IEEE doubles far past
        any block size), so the cohort path is bit-identical to the
        per-transaction fold.  Mixed blocks keep the sequential sum —
        reordering or pairwise-summing float cost factors would change
        the last bits and break digest equality across tiers.
        """
        if self._batch_tier and not any(
            tx.rwset.range_queries for tx in transactions
        ):
            cost_sum = float(len(transactions))
        else:
            cost_sum = sum(self._tx_cost_factor(tx) for tx in transactions)
        service = self._timing.commit_per_block + self._timing.validate_per_tx * cost_sum

        def on_done(finish: float) -> None:
            del finish
            self._validate_and_commit(transactions, cut_reason)

        self._server.submit(service, on_done)

    # -- validation logic ------------------------------------------------------

    def _validate_and_commit(self, transactions: list[Transaction], cut_reason: str) -> None:
        block_number = self._ledger.height
        now = self._kernel.now
        for index, tx in enumerate(transactions):
            status = self._validate(tx)
            tx.status = status
            tx.block_number = block_number
            tx.commit_time = now
            self.status_counts[status] += 1
            if status is TxStatus.SUCCESS:
                self._apply_writes(tx, Version(block=block_number, tx=index))

        block = Block(
            number=block_number,
            transactions=list(transactions),
            previous_hash=self._ledger.tip_hash,
            cut_reason=cut_reason,
            created_at=now,
            committed_at=now,
        )
        self._ledger.append(block)
        if self._on_block_committed is not None:
            self._on_block_committed(block)

    def _validate(self, tx: Transaction) -> TxStatus:
        if tx.is_config:
            return TxStatus.SUCCESS
        satisfied = self._policy_cache.get(tx.endorsers)
        if satisfied is None:
            endorsing_orgs = {name.rpartition("-peer")[0] for name in tx.endorsers}
            satisfied = self._policy.is_satisfied_by(endorsing_orgs)
            self._policy_cache[tx.endorsers] = satisfied
        if not satisfied:
            return TxStatus.ENDORSEMENT_FAILURE

        namespace = self._state_db.namespace(tx.contract)
        verdict = rwset_conflict(namespace, tx.rwset)
        if verdict is not None:
            status, key = verdict
            tx.conflict_key = key
            return status
        return TxStatus.SUCCESS

    def _apply_writes(self, tx: Transaction, version: Version) -> None:
        namespace = self._state_db.namespace(tx.contract)
        for key, value in tx.rwset.writes.items():
            namespace.put(key, value, version)
