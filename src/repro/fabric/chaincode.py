"""Chaincode (smart contract) runtime.

Contracts are plain Python classes whose transaction functions are marked
with :func:`contract_function`.  During endorsement a function executes
against a :class:`ChaincodeContext` bound to the committed world state; the
context records every read (with its version), write (with its value) and
range scan into a :class:`~repro.fabric.transaction.ReadWriteSet` — exactly
the artifact real Fabric endorsers sign and validators check.

A contract function may raise :class:`ChaincodeAbort` to fail the
transaction during endorsement (the paper's *process model pruning*
implemented "directly in the smart contract by early aborting anomalous
transactions during the endorsement phase").
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.fabric.state import WorldState
from repro.fabric.transaction import DELETED, RangeQueryInfo, ReadWriteSet, Version


class ChaincodeError(Exception):
    """Base class for chaincode execution problems."""


class ChaincodeAbort(ChaincodeError):
    """Raised by a contract function to early-abort the transaction."""


class UnknownFunctionError(ChaincodeError):
    """The invoked activity does not exist on the contract."""


#: Version recorded for reads of keys that do not exist yet.  Fabric encodes
#: absent keys as a nil version; a later write to the key still invalidates
#: the read, which this sentinel reproduces.
MISSING_VERSION = Version(block=-1, tx=-1)


@dataclass
class ChaincodeContext:
    """Execution context handed to contract functions during endorsement."""

    state: WorldState
    rwset: ReadWriteSet = field(default_factory=ReadWriteSet)
    invoker: str = ""
    #: Unique per-transaction token (the tx id); lets contracts mint
    #: collision-free keys, e.g. the delta keys of delta-write updates.
    nonce: str = ""

    def get_state(self, key: str) -> Any:
        """Read a key, recording its version in the read set.

        Reads-after-writes within the same transaction observe the pending
        write (read-your-writes), matching Fabric's simulated execution.
        """
        if key in self.rwset.writes:
            pending = self.rwset.writes[key]
            return None if pending == DELETED else pending
        entry = self.state.get(key)
        if entry is None:
            self.rwset.reads.setdefault(key, MISSING_VERSION)
            return None
        self.rwset.reads.setdefault(key, entry.version)
        return entry.value

    def put_state(self, key: str, value: Any) -> None:
        """Stage a write; applied only if the transaction validates."""
        if value == DELETED:
            raise ChaincodeError("use delete_state to remove a key")
        self.rwset.writes[key] = value

    def delete_state(self, key: str) -> None:
        """Stage a key deletion (the DELETED sentinel in the write set)."""
        self.rwset.writes[key] = DELETED

    def get_state_range(self, start: str, end: str) -> list[tuple[str, Any]]:
        """Ordered scan of ``[start, end)``, recorded for phantom detection."""
        results: list[tuple[str, Any]] = []
        recorded: list[tuple[str, Version]] = []
        for key, entry in self.state.range_scan(start, end):
            results.append((key, entry.value))
            recorded.append((key, entry.version))
        self.rwset.range_queries.append(
            RangeQueryInfo(start=start, end=end, results=tuple(recorded))
        )
        return results


def contract_function(func: Callable[..., Any]) -> Callable[..., Any]:
    """Mark a method as an invocable contract transaction function."""
    func.__contract_function__ = True  # type: ignore[attr-defined]
    return func


class Contract:
    """Base class for smart contracts.

    Subclasses define transaction functions with :func:`contract_function`;
    ``name`` doubles as the world-state namespace.  ``setup`` seeds initial
    state directly (genesis data, not transactions).
    """

    #: Contract (chaincode) name; also the state namespace.
    name: str = "contract"

    def functions(self) -> dict[str, Callable[..., Any]]:
        """Map of activity name to bound transaction function."""
        found: dict[str, Callable[..., Any]] = {}
        for attr_name, member in inspect.getmembers(self, predicate=callable):
            if getattr(member, "__contract_function__", False):
                found[attr_name] = member
        return found

    def has_function(self, activity: str) -> bool:
        """Whether ``activity`` names a registered contract function."""
        function = getattr(self, activity, None)
        return callable(function) and getattr(function, "__contract_function__", False)

    def invoke(self, ctx: ChaincodeContext, activity: str, args: tuple[Any, ...]) -> Any:
        """Execute ``activity`` with ``args`` against ``ctx``.

        Raises :class:`UnknownFunctionError` for unknown activities and lets
        :class:`ChaincodeAbort` propagate to the endorser.
        """
        if not self.has_function(activity):
            raise UnknownFunctionError(f"{self.name} has no function {activity!r}")
        function = getattr(self, activity)
        return function(ctx, *args)

    def setup(self, state: WorldState) -> None:
        """Seed genesis state; default contracts start empty."""

    def cost_factor(self, activity: str) -> float:
        """Relative execution cost of ``activity`` (1.0 = nominal).

        Endorsers multiply their per-transaction service time by this, so
        contracts can model expensive functions — e.g. the delta-write DRM
        variant's ``calcRevenue``, which aggregates all delta keys (the
        paper observes its latency increase).
        """
        del activity
        return 1.0

    def describe(self) -> str:
        """Human-readable ``name(functions...)`` summary."""
        names = ", ".join(sorted(self.functions()))
        return f"{self.name}({names})"
