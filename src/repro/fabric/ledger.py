"""The distributed ledger: an append-only chain of blocks.

Fabric appends *every* transaction — successful or failed — to the ledger;
only successful ones update world state.  That append-all property is what
makes the ledger a complete activity log and the primary data source for
BlockOptR (Section 4 of the paper).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterator

from repro.fabric.transaction import Transaction


@dataclass
class Block:
    """One block: an ordered batch of transactions plus chain metadata."""

    number: int
    transactions: list[Transaction]
    previous_hash: str
    cut_reason: str = "count"  # "count" | "timeout" | "bytes" | "final" | "genesis"
    created_at: float = 0.0
    committed_at: float | None = None
    block_hash: str = field(default="", init=False)

    def __post_init__(self) -> None:
        self.block_hash = self._compute_hash()

    def _compute_hash(self) -> str:
        digest = hashlib.sha256()
        digest.update(self.previous_hash.encode())
        digest.update(str(self.number).encode())
        for tx in self.transactions:
            digest.update(tx.tx_id.encode())
        return digest.hexdigest()

    def __len__(self) -> int:
        return len(self.transactions)


class Ledger:
    """Append-only block store with hash chaining."""

    GENESIS_HASH = "0" * 64

    def __init__(self) -> None:
        self._blocks: list[Block] = []

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks)

    @property
    def height(self) -> int:
        """Number of blocks on the chain (the next block number)."""
        return len(self._blocks)

    @property
    def tip_hash(self) -> str:
        """Hash of the newest block (chained into the next one)."""
        return self._blocks[-1].block_hash if self._blocks else self.GENESIS_HASH

    def append(self, block: Block) -> None:
        """Append ``block``; enforces number and hash-chain continuity."""
        if block.number != self.height:
            raise ValueError(
                f"block number {block.number} does not extend ledger height {self.height}"
            )
        if block.previous_hash != self.tip_hash:
            raise ValueError("block does not chain from current tip")
        self._blocks.append(block)

    def block(self, number: int) -> Block:
        """The block at height ``number``."""
        return self._blocks[number]

    def transactions(self, include_config: bool = True) -> Iterator[Transaction]:
        """All transactions in commit order."""
        for block in self._blocks:
            for tx in block.transactions:
                if include_config or not tx.is_config:
                    yield tx

    def verify_chain(self) -> bool:
        """Recompute hashes and check chain integrity end to end."""
        previous = self.GENESIS_HASH
        for block in self._blocks:
            if block.previous_hash != previous:
                return False
            if block.block_hash != block._compute_hash():
                return False
            previous = block.block_hash
        return True
