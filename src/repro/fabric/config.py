"""Network, organization, and timing configuration.

``TimingConfig`` holds the calibrated service times of each pipeline stage.
The constants were tuned (see ``benchmarks/``, EXPERIMENTS.md) so that the
simulated network saturates in the 150-250 TPS band of the paper's testbed
and reproduces its qualitative behaviours: endorser bottlenecks under
mandatory-org policies, orderer collapse with tiny blocks, timeout-bound
latency with oversized blocks, and MVCC conflict growth with backlog.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.fabric.retry import RetryPolicy
from repro.sim.kernel import KERNEL_TIERS

#: Selectable failure-mitigation strategies (see docs/FAILURES.md):
#: ``none`` is the seed behaviour, ``early_abort`` drops transactions with
#: already-stale read sets at the client before ordering, ``reorder``
#: swaps in the conflict-aware in-block scheduler.
MITIGATIONS = ("none", "early_abort", "reorder")


@dataclass(frozen=True)
class TimingConfig:
    """Service times (seconds) and delays for every pipeline stage.

    Calibration (see EXPERIMENTS.md): the *client proposal* stage is the
    default bottleneck at 300 TPS — matching the Fabric/Caliper stack,
    where backlog accumulates before chaincode execution, so the
    execute-to-commit staleness window stays small and success rates stay
    high even at multi-second latencies.  Endorsers saturate only under
    mandatory-org policies (P1/P2+skew), which adds latency but not
    staleness — reproducing Figure 7's high-latency, high-success runs.
    The large per-block ordering cost (Raft round + assembly +
    dissemination) is what makes small block counts collapse (Figure 9).
    """

    #: Client work to build/sign one transaction proposal (Caliper worker).
    client_per_tx: float = 0.014
    #: Client packaging cost per endorsement response to verify; the total
    #: packaging time is ``(1 + num_endorsements) * package_per_endorsement``.
    package_per_endorsement: float = 0.0005
    #: Chaincode execution + signing on an endorsing peer, per transaction.
    endorse_per_tx: float = 0.003
    #: One-way network delay between any two components.
    network_delay: float = 0.002
    #: Ordering-service cost per block (Raft round + block assembly).
    order_per_block: float = 0.4
    #: Ordering-service cost per transaction within a block.
    order_per_tx: float = 0.001
    #: Validation pipeline cost per transaction (signature + MVCC check).
    validate_per_tx: float = 0.0022
    #: Per-block commit cost on the validating peer.
    commit_per_block: float = 0.03
    #: How long a client waits for an endorser before giving up on it.
    endorse_timeout: float = 8.0

    def scaled(self, factor: float) -> "TimingConfig":
        """A copy with every service time multiplied by ``factor``."""
        return TimingConfig(
            client_per_tx=self.client_per_tx * factor,
            package_per_endorsement=self.package_per_endorsement * factor,
            endorse_per_tx=self.endorse_per_tx * factor,
            network_delay=self.network_delay * factor,
            order_per_block=self.order_per_block * factor,
            order_per_tx=self.order_per_tx * factor,
            validate_per_tx=self.validate_per_tx * factor,
            commit_per_block=self.commit_per_block * factor,
            endorse_timeout=self.endorse_timeout,
        )


@dataclass
class OrgConfig:
    """One organization: its clients and endorsing peers."""

    name: str
    num_clients: int = 5
    endorsers_per_org: int = 1

    def client_names(self) -> list[str]:
        """The org's client process names (``<org>-client<i>``)."""
        return [f"{self.name}-client{i}" for i in range(self.num_clients)]

    def endorser_names(self) -> list[str]:
        """The org's endorsing peer names (``<org>-peer<i>``)."""
        return [f"{self.name}-peer{i}" for i in range(self.endorsers_per_org)]


@dataclass
class NetworkConfig:
    """Complete configuration of a simulated Fabric network.

    Block cutting follows Fabric's three conditions: a block is cut when the
    buffered transaction count reaches ``block_count``, the oldest buffered
    transaction is ``block_timeout`` seconds old, or the buffered payload
    reaches ``block_bytes``.
    """

    orgs: list[OrgConfig] = field(default_factory=lambda: default_orgs(2))
    endorsement_policy: str = "OutOf(1,Org1,Org2)"
    block_count: int = 100
    block_timeout: float = 1.0
    block_bytes: int = 2 * 1024 * 1024
    #: Zipf skew for how clients pick among policy alternatives; 0 = uniform.
    endorser_selection_skew: float = 0.0
    #: Ordering-stage scheduler: "fifo", "fabricpp" or "fabricsharp".
    scheduler: str = "fifo"
    #: Sliding-window (in blocks) for the FabricSharp-style scheduler.
    scheduler_window: int = 5
    timing: TimingConfig = field(default_factory=TimingConfig)
    seed: int = 7
    #: Client retry/resubmission policy; ``None`` = fire-and-forget clients
    #: (the seed behaviour — baseline runs stay bit-identical).
    retry: RetryPolicy | None = None
    #: Failure-mitigation strategy, one of :data:`MITIGATIONS`.
    mitigation: str = "none"
    #: Kernel execution tier, one of
    #: :data:`~repro.sim.kernel.KERNEL_TIERS`; ``None`` defers to the
    #: ``REPRO_KERNEL`` environment variable (default ``reference``).
    #: Both tiers are bit-identical; ``batch`` trades per-event heap
    #: maintenance for one array sort (see :mod:`repro.sim.batch`).
    kernel_tier: str | None = None
    #: SLO-guardian controller configuration
    #: (:class:`repro.control.spec.ControlSpec`); ``None`` — the default —
    #: keeps the run controller-free and byte-identical to builds without
    #: the control package.
    control: "object | None" = None

    def __post_init__(self) -> None:
        if self.control is not None:
            # Imported lazily: repro.control.bounds imports this module.
            from repro.control.spec import ControlSpec

            if not isinstance(self.control, ControlSpec):
                raise ValueError(
                    f"control must be a ControlSpec or None, got {self.control!r}"
                )
        if self.kernel_tier is not None and self.kernel_tier not in KERNEL_TIERS:
            raise ValueError(
                f"unknown kernel_tier {self.kernel_tier!r}; "
                f"known: {', '.join(KERNEL_TIERS)}"
            )
        if self.mitigation not in MITIGATIONS:
            raise ValueError(
                f"unknown mitigation {self.mitigation!r}; known: {', '.join(MITIGATIONS)}"
            )
        if self.block_count < 1:
            raise ValueError(f"block_count must be >= 1, got {self.block_count}")
        if self.block_timeout <= 0:
            raise ValueError(f"block_timeout must be positive, got {self.block_timeout}")
        if not self.orgs:
            raise ValueError("need at least one organization")
        names = [org.name for org in self.orgs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate organization names in {names}")

    def org_names(self) -> list[str]:
        """Organization names, in configuration order."""
        return [org.name for org in self.orgs]

    def org(self, name: str) -> OrgConfig:
        """Look one organization up by name."""
        for org in self.orgs:
            if org.name == name:
                return org
        raise KeyError(f"unknown organization {name!r}")

    def total_clients(self) -> int:
        """Client processes across all organizations."""
        return sum(org.num_clients for org in self.orgs)

    def with_policy(self, expression: str) -> "NetworkConfig":
        """Copy with a new endorsement policy (a config-update transaction)."""
        clone = self.copy()
        clone.endorsement_policy = expression
        return clone

    def with_block_count(self, block_count: int) -> "NetworkConfig":
        """Copy with a new block count (a config-update transaction)."""
        clone = self.copy()
        clone.block_count = block_count
        return clone

    def copy(self) -> "NetworkConfig":
        """Deep-enough copy: orgs are cloned, immutable members shared."""
        return NetworkConfig(
            orgs=[replace(org) for org in self.orgs],
            endorsement_policy=self.endorsement_policy,
            block_count=self.block_count,
            block_timeout=self.block_timeout,
            block_bytes=self.block_bytes,
            endorser_selection_skew=self.endorser_selection_skew,
            scheduler=self.scheduler,
            scheduler_window=self.scheduler_window,
            timing=self.timing,
            seed=self.seed,
            retry=self.retry,
            mitigation=self.mitigation,
            kernel_tier=self.kernel_tier,
            control=self.control,
        )


def default_orgs(n: int, num_clients: int = 5, endorsers_per_org: int = 1) -> list[OrgConfig]:
    """``n`` organizations named Org1..OrgN with uniform resources."""
    if n < 1:
        raise ValueError(f"need at least one org, got {n}")
    return [
        OrgConfig(name=f"Org{i}", num_clients=num_clients, endorsers_per_org=endorsers_per_org)
        for i in range(1, n + 1)
    ]
