"""Client (application) model.

Fabric clients do real work: build and sign proposals, verify endorser
responses, pack them into an envelope, and submit to ordering.  Each
organization runs a pool of client processes; a request occupies one client
for ``client_per_tx`` at proposal time and again at packaging time.  When
one organization invokes a disproportionate share of transactions
(transaction distribution skew), its clients queue up — the bottleneck the
paper's *client resource boost* recommendation targets.
"""

from __future__ import annotations

from typing import Callable

from repro.fabric.config import NetworkConfig
from repro.sim.kernel import Kernel
from repro.sim.resources import Server


class ClientPool:
    """All client processes of the network, grouped by organization."""

    def __init__(self, kernel: Kernel, config: NetworkConfig) -> None:
        self._kernel = kernel
        self._timing = config.timing
        self._clients_by_org: dict[str, list[Server]] = {}
        self._rr_in_org: dict[str, int] = {}
        self._rr_orgs = 0
        self._org_names: list[str] = []
        for org in config.orgs:
            servers = [Server(kernel, name) for name in org.client_names()]
            self._clients_by_org[org.name] = servers
            self._rr_in_org[org.name] = 0
            self._org_names.append(org.name)

    def servers(self) -> list[Server]:
        """Every client server (for utilization reporting)."""
        return [s for servers in self._clients_by_org.values() for s in servers]

    def assign(self, invoker_org: str | None) -> Server:
        """Pick the client that will own a request.

        Within an org, clients are used round-robin; with no org pinned,
        orgs themselves rotate round-robin — an even spread unless the
        workload skews invokers deliberately.
        """
        if invoker_org is None:
            org = self._org_names[self._rr_orgs % len(self._org_names)]
            self._rr_orgs += 1
        else:
            if invoker_org not in self._clients_by_org:
                raise KeyError(f"unknown invoker organization {invoker_org!r}")
            org = invoker_org
        servers = self._clients_by_org[org]
        index = self._rr_in_org[org] % len(servers)
        self._rr_in_org[org] += 1
        return servers[index]

    def org_of(self, client_name: str) -> str:
        """Organization that owns ``client_name``."""
        org, _, _ = client_name.rpartition("-client")
        return org

    def propose(self, client: Server, on_done: Callable[[float], None]) -> None:
        """Stage 1: build/sign the transaction proposal."""
        client.submit(self._timing.client_per_tx, on_done)

    def package(
        self, client: Server, num_endorsements: int, on_done: Callable[[float], None]
    ) -> None:
        """Stage 2: verify endorsements, pack envelope, submit to ordering.

        Much cheaper than proposal creation, but grows with the number of
        endorser signatures to verify — one reason the paper's 4-org runs
        (Majority needs 3 endorsements) are uniformly slower.
        """
        service = self._timing.package_per_endorsement * (1 + max(1, num_endorsements))
        client.submit(service, on_done)
