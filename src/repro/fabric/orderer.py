"""Ordering service: block cutting and Raft-style consensus cost.

Blocks are cut when any of Fabric's three conditions is met first —
transaction *count*, *timeout* since the first buffered transaction, or
buffered *bytes*.  Each cut block then occupies the ordering service for a
per-block cost (Raft round, block assembly) plus a per-transaction cost,
so configurations that cut many small blocks saturate the orderer — the
failure mode behind the paper's *block size adaptation* recommendation.

An optional :mod:`repro.fabric.reorder` scheduler rewrites each batch
before it becomes a block (Fabric++ / FabricSharp).
"""

from __future__ import annotations

from typing import Callable

from repro.fabric.conditions import NetworkConditions
from repro.fabric.config import NetworkConfig
from repro.fabric.reorder import Scheduler
from repro.fabric.transaction import Transaction
from repro.sim.kernel import Event, Kernel
from repro.sim.resources import Server


class OrderingService:
    """Buffers envelopes, cuts blocks, and hands ordered batches downstream."""

    def __init__(
        self,
        kernel: Kernel,
        config: NetworkConfig,
        scheduler: Scheduler,
        deliver: Callable[[list[Transaction], str, float], None],
        early_abort: Callable[[Transaction, float], None],
        conditions: NetworkConditions | None = None,
    ) -> None:
        self._kernel = kernel
        self._config = config
        self._timing = config.timing
        self._conditions = conditions or NetworkConditions(config.timing)
        self._scheduler = scheduler
        self._deliver = deliver
        self._early_abort = early_abort
        self._server = Server(kernel, "orderer")
        self._buffer: list[Transaction] = []
        self._buffer_bytes = 0
        self._timeout_event: Event | None = None
        #: Live cutting parameters.  They start at the configured values
        #: and are the SLO-guardian controller's actuation surface — the
        #: controller re-sizes blocks mid-run *here*, never by mutating
        #: the shared (and possibly reused) :class:`NetworkConfig`.
        self.block_count = config.block_count
        self.block_timeout = config.block_timeout
        self.blocks_cut = 0
        self.cut_reasons: dict[str, int] = {"count": 0, "timeout": 0, "bytes": 0}

    @property
    def server(self) -> Server:
        """The ordering service's server resource."""
        return self._server

    def submit(self, tx: Transaction) -> None:
        """An envelope arrives from a client."""
        tx.order_time = self._kernel.now
        self._buffer.append(tx)
        self._buffer_bytes += tx.estimated_bytes()
        if len(self._buffer) == 1:
            self._arm_timeout()
        if len(self._buffer) >= self.block_count:
            self._cut("count")
        elif self._buffer_bytes >= self._config.block_bytes:
            self._cut("bytes")

    def pending(self) -> int:
        """Envelopes currently buffered toward the next block."""
        return len(self._buffer)

    def set_scheduler(self, scheduler: Scheduler) -> None:
        """Swap the batch scheduler (mitigation toggle seam).

        The scheduler is consulted only at cut time, so swapping between
        cuts affects exactly the blocks cut afterwards.
        """
        self._scheduler = scheduler

    def _arm_timeout(self) -> None:
        self._timeout_event = self._kernel.schedule_in(
            self.block_timeout, self._on_timeout
        )

    def _on_timeout(self) -> None:
        if self._buffer:
            self._cut("timeout")

    def _cut(self, reason: str) -> None:
        if self._timeout_event is not None:
            self._timeout_event.cancel()
            self._timeout_event = None
        batch = self._buffer
        self._buffer = []
        self._buffer_bytes = 0

        ordered, aborts = self._scheduler.schedule(batch)
        now = self._kernel.now
        for tx in aborts:
            self._early_abort(tx, now)
        if not ordered:
            # The scheduler aborted the whole batch; Fabric never emits
            # empty blocks.
            return
        self.blocks_cut += 1
        self.cut_reasons[reason] = self.cut_reasons.get(reason, 0) + 1

        service = self._timing.order_per_block + self._timing.order_per_tx * len(ordered)

        def on_done(finish: float) -> None:
            deliver_at = finish + self._conditions.network_delay()
            self._kernel.schedule(
                deliver_at, lambda: self._deliver(ordered, reason, self._kernel.now)
            )

        self._server.submit(service, on_done)
