"""Time-varying network-wide conditions.

Every component that previously read the static
``TimingConfig.network_delay`` now reads it through one shared
:class:`NetworkConditions` instance, so scenario interventions
(:mod:`repro.scenario`) can inflate the delay mid-run — a latency spike —
and restore it later.  The delay in effect when a message is *scheduled*
is the delay it experiences; messages already in flight are unaffected.
"""

from __future__ import annotations

from repro.fabric.config import TimingConfig


class NetworkConditions:
    """Mutable wide-area conditions shared by all components of one network."""

    def __init__(self, timing: TimingConfig) -> None:
        self._timing = timing
        self._delay_multiplier = 1.0

    @property
    def delay_multiplier(self) -> float:
        """Current network-delay inflation factor (1.0 = nominal)."""
        return self._delay_multiplier

    def set_delay_multiplier(self, factor: float) -> None:
        """Inflate (or restore) the one-way delay of subsequent messages."""
        if factor <= 0:
            raise ValueError(f"delay multiplier must be positive, got {factor!r}")
        self._delay_multiplier = factor

    def network_delay(self) -> float:
        """One-way delay a message sent *right now* experiences."""
        return self._timing.network_delay * self._delay_multiplier
