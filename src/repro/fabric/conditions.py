"""Time-varying network-wide conditions.

Every component that previously read the static
``TimingConfig.network_delay`` now reads it through one shared
:class:`NetworkConditions` instance, so scenario interventions
(:mod:`repro.scenario`) can inflate the delay mid-run — a latency spike —
and restore it later.  The delay in effect when a message is *scheduled*
is the delay it experiences; messages already in flight are unaffected.
"""

from __future__ import annotations

from repro.fabric.config import TimingConfig


class NetworkConditions:
    """Mutable wide-area conditions shared by all components of one network.

    Two multiplicative layers compose: a network-wide multiplier (latency
    spikes) and per-organization multipliers (``region_lag`` — one region
    sits behind a congested WAN link while the rest of the network is
    nominal).  A message attributed to an org experiences the product of
    both; messages without an org attribution (block delivery) see only
    the global layer.
    """

    def __init__(self, timing: TimingConfig) -> None:
        self._timing = timing
        self._delay_multiplier = 1.0
        self._org_multipliers: dict[str, float] = {}

    @property
    def delay_multiplier(self) -> float:
        """Current network-delay inflation factor (1.0 = nominal)."""
        return self._delay_multiplier

    def set_delay_multiplier(self, factor: float) -> None:
        """Inflate (or restore) the one-way delay of subsequent messages."""
        if factor <= 0:
            raise ValueError(f"delay multiplier must be positive, got {factor!r}")
        self._delay_multiplier = factor

    def set_org_delay_multiplier(self, org: str, factor: float) -> None:
        """Inflate (or restore, at 1.0) one organization's one-way delays."""
        if factor <= 0:
            raise ValueError(f"delay multiplier must be positive, got {factor!r}")
        if factor == 1.0:
            self._org_multipliers.pop(org, None)
        else:
            self._org_multipliers[org] = factor

    def org_delay_multiplier(self, org: str) -> float:
        """The org's current region multiplier (1.0 = nominal)."""
        return self._org_multipliers.get(org, 1.0)

    def network_delay(self, org: str | None = None) -> float:
        """One-way delay a message sent *right now* experiences.

        ``org`` attributes the message to an organization so regional
        asymmetry applies; ``None`` (the default) is org-agnostic traffic
        such as block delivery, which only the global multiplier affects.
        """
        delay = self._timing.network_delay * self._delay_multiplier
        if org is not None and self._org_multipliers:
            delay *= self._org_multipliers.get(org, 1.0)
        return delay
