"""Time-varying network-wide conditions.

Every component that previously read the static
``TimingConfig.network_delay`` now reads it through one shared
:class:`NetworkConditions` instance, so scenario interventions
(:mod:`repro.scenario`) can inflate the delay mid-run — a latency spike —
and restore it later.  The delay in effect when a message is *scheduled*
is the delay it experiences; messages already in flight are unaffected.

**The actuation seam.**  Two writers mutate conditions mid-run: the
scenario engine (fault injection) and the SLO-guardian controller
(:mod:`repro.control`).  Both go through the same setters, which makes
the composition rule explicit — *last writer wins*, in kernel event
order, which is deterministic because interventions and controller ticks
ride ordered priority lanes.  Every write is appended to :attr:`journal`
with its ``source`` attribution, so both timelines can prove who set
what, when, over what previous value.
"""

from __future__ import annotations

from repro.fabric.config import TimingConfig


class NetworkConditions:
    """Mutable wide-area conditions shared by all components of one network.

    Two multiplicative delay layers compose: a network-wide multiplier
    (latency spikes) and per-organization multipliers (``region_lag`` —
    one region sits behind a congested WAN link while the rest of the
    network is nominal).  A message attributed to an org experiences the
    product of both; messages without an org attribution (block delivery)
    see only the global layer.

    A third, independent surface is the **send-rate cap**: an admission
    pacer over client submissions (the controller's rate throttle).  It
    is ``None`` — completely inert — unless a writer sets it, so
    controller-off runs are byte-identical to builds without it.
    """

    def __init__(self, timing: TimingConfig) -> None:
        self._timing = timing
        self._delay_multiplier = 1.0
        self._org_multipliers: dict[str, float] = {}
        self._send_rate_cap: float | None = None
        #: Every mutation in kernel order: ``(source, field, old, new)``.
        self.journal: list[tuple[str, str, object, object]] = []

    @property
    def delay_multiplier(self) -> float:
        """Current network-delay inflation factor (1.0 = nominal)."""
        return self._delay_multiplier

    @property
    def send_rate_cap(self) -> float | None:
        """Current admission cap in transactions/second (None = uncapped)."""
        return self._send_rate_cap

    def set_delay_multiplier(self, factor: float, source: str = "scenario") -> None:
        """Inflate (or restore) the one-way delay of subsequent messages."""
        if factor <= 0:
            raise ValueError(f"delay multiplier must be positive, got {factor!r}")
        self.journal.append((source, "delay_multiplier", self._delay_multiplier, factor))
        self._delay_multiplier = factor

    def set_org_delay_multiplier(
        self, org: str, factor: float, source: str = "scenario"
    ) -> None:
        """Inflate (or restore, at 1.0) one organization's one-way delays."""
        if factor <= 0:
            raise ValueError(f"delay multiplier must be positive, got {factor!r}")
        old = self._org_multipliers.get(org, 1.0)
        self.journal.append((source, f"org_delay_multiplier[{org}]", old, factor))
        if factor == 1.0:
            self._org_multipliers.pop(org, None)
        else:
            self._org_multipliers[org] = factor

    def org_delay_multiplier(self, org: str) -> float:
        """The org's current region multiplier (1.0 = nominal)."""
        return self._org_multipliers.get(org, 1.0)

    def set_send_rate_cap(self, cap: float | None, source: str = "control") -> None:
        """Cap (or, with ``None``, uncap) the client submission admission rate.

        The value is advisory: :class:`~repro.fabric.network.FabricNetwork`
        reads it at each admission decision, pacing queued submissions
        ``1 / cap`` apart and flushing the queue when the cap clears.
        """
        if cap is not None and cap <= 0:
            raise ValueError(f"send rate cap must be positive, got {cap!r}")
        self.journal.append((source, "send_rate_cap", self._send_rate_cap, cap))
        self._send_rate_cap = cap

    def network_delay(self, org: str | None = None) -> float:
        """One-way delay a message sent *right now* experiences.

        ``org`` attributes the message to an organization so regional
        asymmetry applies; ``None`` (the default) is org-agnostic traffic
        such as block delivery, which only the global multiplier affects.
        """
        delay = self._timing.network_delay * self._delay_multiplier
        if org is not None and self._org_multipliers:
            delay *= self._org_multipliers.get(org, 1.0)
        return delay
