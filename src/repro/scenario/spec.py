"""The scenario DSL: timed interventions against a running network.

A :class:`ScenarioSpec` is a named, ordered list of :class:`Intervention`
records.  Both are frozen, declarative (plain strings and numbers), and
JSON round-trippable, so scenarios can live in the bench registry, in the
result cache's identity payload, and in ``--spec`` files authored by hand.

Intervention kinds
==================

``peer_crash``
    The target endorsing peer(s) stop accepting endorsement requests at
    ``at``; queued work drains.  With ``duration``, the peers recover
    automatically at ``at + duration``; otherwise pair with an explicit
    ``peer_recover``.
``peer_recover``
    The target peer(s) accept work again.
``endorser_slowdown``
    The target peers' chaincode execution runs ``factor`` times slower
    from ``at`` (restored to nominal after ``duration``, if given).
``latency_spike``
    Every one-way network delay scheduled in the window is multiplied by
    ``factor``.
``orderer_degradation``
    The ordering service serves blocks ``factor`` times slower in the
    window (a struggling Raft leader).
``region_lag``
    Multi-region latency asymmetry: clients of the target *organization*
    see their one-way network delays multiplied by ``factor`` in the
    window (a region behind a congested WAN link), while other orgs are
    unaffected.
``burst_arrivals``
    Workload transform: requests submitted inside ``[at, at+duration)``
    arrive ``factor`` times faster, compressed toward ``at``.
``conflict_storm``
    Workload transform: ``fraction`` of the window's ``activity``
    requests are retargeted onto ``hot_keys`` hot keys, manufacturing
    MVCC-conflict contention.
``rate_curve``
    Workload transform: requests from ``at`` onward are re-timed onto a
    piecewise rate ``profile`` — ``(offset_seconds, rate_tps)``
    breakpoints relative to ``at``, the last rate extending indefinitely
    — expressing diurnal curves and flash crowds on any base workload.
``hot_key_drift``
    Workload transform: the window is split into ``phases`` equal
    sub-windows and each retargets ``fraction`` of its ``activity``
    requests onto a *rotated* ``hot_keys``-sized slice of the key
    space, so the contended set drifts over time instead of sitting
    still.
``mix_shift``
    Workload transform: ``fraction`` of the window's ``from_activity``
    requests are rewritten to ``to_activity`` (key-only arguments), a
    mid-run contract-mix shift such as reads turning into updates.

Targets: ``None`` (all endorsing peers), an organization name (``Org1``)
or a full peer name (``Org1-peer0``).  ``region_lag`` requires an
organization target.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass

#: Kinds applied as kernel-scheduled interventions on the live network.
NETWORK_KINDS = frozenset(
    {
        "peer_crash",
        "peer_recover",
        "endorser_slowdown",
        "latency_spike",
        "orderer_degradation",
        "region_lag",
    }
)

#: Kinds applied as deterministic request-list transforms before the run.
WORKLOAD_KINDS = frozenset(
    {"burst_arrivals", "conflict_storm", "rate_curve", "hot_key_drift", "mix_shift"}
)

KINDS = NETWORK_KINDS | WORKLOAD_KINDS

#: Kinds whose effect is multiplicative and restorable.
_FACTOR_KINDS = frozenset(
    {
        "endorser_slowdown",
        "latency_spike",
        "orderer_degradation",
        "burst_arrivals",
        "region_lag",
    }
)

#: Kinds that require a window.
_WINDOWED_KINDS = frozenset(
    {"burst_arrivals", "conflict_storm", "hot_key_drift", "mix_shift"}
)

#: Kinds that retarget a share of an activity's requests onto hot keys.
_STORM_KINDS = frozenset({"conflict_storm", "hot_key_drift"})

#: Hard ceiling on any multiplier — factors beyond this are authoring
#: mistakes (a fat-fingered exponent), not scenarios worth simulating.
MAX_FACTOR = 1000.0

#: Hard ceiling on a rate_curve segment rate (transactions per second).
MAX_RATE = 1_000_000.0

#: Activities a ``mix_shift`` may rewrite *from* (key-first arguments).
MIX_FROM_ACTIVITIES = frozenset({"read", "write", "update", "delete"})

#: Activities a ``mix_shift`` may rewrite *to*: invocable with the key
#: alone (``write`` needs an explicit value, so it is not a valid target).
MIX_TO_ACTIVITIES = frozenset({"read", "update", "delete"})


def _finite(value: float, label: str) -> None:
    """Reject NaN/inf early — they otherwise fail deep inside the kernel."""
    if not math.isfinite(value):
        raise ValueError(f"{label} must be finite, got {value!r}")


@dataclass(frozen=True)
class Intervention:
    """One timed intervention of a scenario."""

    kind: str
    #: Simulated time (seconds) the intervention takes effect.
    at: float
    #: Window length; optional for the restorable network kinds (omitted
    #: means permanent), required for the workload transforms.
    duration: float | None = None
    #: Peer/org target for the endorser kinds (``None`` = every peer).
    target: str | None = None
    #: Multiplier for the ``*_slowdown`` / spike / degradation / burst kinds.
    factor: float = 2.0
    #: Share of the window's matching requests a conflict storm retargets.
    fraction: float = 0.5
    #: Size of the conflict storm's hot-key set.
    hot_keys: int = 4
    #: Activity a conflict storm retargets (key-first args assumed).
    activity: str = "update"
    #: ``rate_curve`` breakpoints: ``(offset_seconds, rate_tps)`` pairs
    #: relative to ``at``; the first offset must be 0.0 and offsets must
    #: strictly increase.  ``None`` for every other kind.
    profile: tuple[tuple[float, float], ...] | None = None
    #: Number of equal sub-windows a ``hot_key_drift`` rotates through.
    phases: int = 2
    #: Activity a ``mix_shift`` rewrites from.
    from_activity: str = "read"
    #: Activity a ``mix_shift`` rewrites to (key-only invocation).
    to_activity: str = "update"

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown intervention kind {self.kind!r}; known: {sorted(KINDS)}"
            )
        _finite(self.at, "intervention time")
        if self.at < 0:
            raise ValueError(f"intervention time must be >= 0, got {self.at}")
        if self.duration is not None:
            _finite(self.duration, "duration")
            if self.duration <= 0:
                raise ValueError(f"duration must be positive, got {self.duration}")
        if self.kind in _WINDOWED_KINDS and self.duration is None:
            raise ValueError(f"{self.kind} requires a duration")
        if self.kind in _FACTOR_KINDS:
            _finite(self.factor, f"{self.kind} factor")
            if self.factor <= 0:
                raise ValueError(
                    f"{self.kind} factor must be positive, got {self.factor}"
                )
            if self.factor > MAX_FACTOR:
                raise ValueError(
                    f"{self.kind} factor must be <= {MAX_FACTOR:g}, got {self.factor}"
                )
        if self.kind == "burst_arrivals" and self.factor <= 1.0:
            raise ValueError(
                f"burst_arrivals factor must exceed 1, got {self.factor}"
            )
        if self.kind == "region_lag" and self.target is None:
            raise ValueError("region_lag requires an organization target")
        if self.kind in _STORM_KINDS or self.kind == "mix_shift":
            _finite(self.fraction, f"{self.kind} fraction")
            if not 0.0 < self.fraction <= 1.0:
                raise ValueError(
                    f"{self.kind} fraction must be in (0, 1], got {self.fraction}"
                )
        if self.kind in _STORM_KINDS and self.hot_keys < 1:
            raise ValueError(f"{self.kind} needs >= 1 hot key, got {self.hot_keys}")
        if self.kind == "hot_key_drift" and self.phases < 2:
            raise ValueError(
                f"hot_key_drift needs >= 2 phases to drift, got {self.phases}"
            )
        if self.kind == "mix_shift":
            if self.from_activity not in MIX_FROM_ACTIVITIES:
                raise ValueError(
                    f"mix_shift from_activity must be one of "
                    f"{sorted(MIX_FROM_ACTIVITIES)}, got {self.from_activity!r}"
                )
            if self.to_activity not in MIX_TO_ACTIVITIES:
                raise ValueError(
                    f"mix_shift to_activity must be one of "
                    f"{sorted(MIX_TO_ACTIVITIES)}, got {self.to_activity!r}"
                )
            if self.from_activity == self.to_activity:
                raise ValueError(
                    f"mix_shift must change the activity, got "
                    f"{self.from_activity!r} -> {self.to_activity!r}"
                )
        if self.kind == "rate_curve":
            self._validate_profile()
        elif self.profile is not None:
            raise ValueError(f"{self.kind} does not take a rate profile")

    def _validate_profile(self) -> None:
        """Normalize and hard-validate a ``rate_curve`` breakpoint profile."""
        if not self.profile:
            raise ValueError("rate_curve requires a non-empty profile")
        # Normalize JSON-decoded lists into tuples, keeping the dataclass
        # hashable and the field usable as a cache-identity component.
        profile = tuple(
            (float(offset), float(rate)) for offset, rate in self.profile
        )
        object.__setattr__(self, "profile", profile)
        previous = None
        for position, (offset, rate) in enumerate(profile):
            _finite(offset, f"profile offset #{position}")
            _finite(rate, f"profile rate #{position}")
            if position == 0 and offset != 0.0:
                raise ValueError(
                    f"rate_curve profile must start at offset 0.0, got {offset}"
                )
            if previous is not None and offset <= previous:
                raise ValueError(
                    "rate_curve profile offsets must strictly increase, got "
                    f"{offset} after {previous}"
                )
            if rate <= 0:
                raise ValueError(f"profile rate must be positive, got {rate}")
            if rate > MAX_RATE:
                raise ValueError(
                    f"profile rate must be <= {MAX_RATE:g}, got {rate}"
                )
            previous = offset

    @property
    def end(self) -> float | None:
        """End of the window, or ``None`` for permanent interventions."""
        return None if self.duration is None else self.at + self.duration

    def to_dict(self) -> dict:
        """Only the fields that matter for this kind — dumps double as
        authoring templates, so irrelevant defaults must not leak in."""
        data: dict = {"kind": self.kind, "at": self.at}
        if self.duration is not None:
            data["duration"] = self.duration
        if self.target is not None:
            data["target"] = self.target
        if self.kind in _FACTOR_KINDS:
            data["factor"] = self.factor
        if self.kind in _STORM_KINDS:
            data["fraction"] = self.fraction
            data["hot_keys"] = self.hot_keys
            data["activity"] = self.activity
        if self.kind == "hot_key_drift":
            data["phases"] = self.phases
        if self.kind == "mix_shift":
            data["fraction"] = self.fraction
            data["from_activity"] = self.from_activity
            data["to_activity"] = self.to_activity
        if self.kind == "rate_curve":
            data["profile"] = [list(point) for point in self.profile or ()]
        return data

    def describe(self) -> str:
        """One-line human summary, used by the CLI timeline."""
        parts = [f"{self.kind} @ {self.at:g}s"]
        if self.duration is not None:
            parts.append(f"for {self.duration:g}s")
        if self.target is not None:
            parts.append(f"target={self.target}")
        if self.kind in _FACTOR_KINDS:
            parts.append(f"x{self.factor:g}")
        if self.kind == "conflict_storm":
            parts.append(
                f"{self.fraction:.0%} of {self.activity!r} onto {self.hot_keys} keys"
            )
        if self.kind == "hot_key_drift":
            parts.append(
                f"{self.fraction:.0%} of {self.activity!r} onto {self.hot_keys} "
                f"drifting keys over {self.phases} phases"
            )
        if self.kind == "mix_shift":
            parts.append(
                f"{self.fraction:.0%} {self.from_activity!r} -> {self.to_activity!r}"
            )
        if self.kind == "rate_curve":
            curve = ", ".join(
                f"+{offset:g}s@{rate:g}tps" for offset, rate in self.profile or ()
            )
            parts.append(f"[{curve}]")
        return " ".join(parts)


@dataclass(frozen=True)
class ScenarioSpec:
    """A named scenario: an ordered list of timed interventions."""

    name: str
    interventions: tuple[Intervention, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario needs a name")
        if not self.interventions:
            raise ValueError(f"scenario {self.name!r} has no interventions")
        # Make list inputs ergonomic while keeping the dataclass hashable.
        object.__setattr__(self, "interventions", tuple(self.interventions))

    def network_interventions(self) -> list[Intervention]:
        """The kernel-scheduled interventions, in spec order."""
        return [iv for iv in self.interventions if iv.kind in NETWORK_KINDS]

    def workload_interventions(self) -> list[Intervention]:
        """The request-transform interventions, in spec order."""
        return [iv for iv in self.interventions if iv.kind in WORKLOAD_KINDS]

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "interventions": [iv.to_dict() for iv in self.interventions],
        }

    @staticmethod
    def from_dict(data: dict) -> "ScenarioSpec":
        try:
            interventions = tuple(
                Intervention(**record) for record in data["interventions"]
            )
            return ScenarioSpec(
                name=data["name"],
                interventions=interventions,
                description=data.get("description", ""),
            )
        except TypeError as exc:
            raise ValueError(f"malformed scenario spec: {exc}") from exc
        except KeyError as exc:
            raise ValueError(f"scenario spec missing field {exc.args[0]!r}") from exc

    def to_json(self, indent: int = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "ScenarioSpec":
        return ScenarioSpec.from_dict(json.loads(text))
