"""The scenario DSL: timed interventions against a running network.

A :class:`ScenarioSpec` is a named, ordered list of :class:`Intervention`
records.  Both are frozen, declarative (plain strings and numbers), and
JSON round-trippable, so scenarios can live in the bench registry, in the
result cache's identity payload, and in ``--spec`` files authored by hand.

Intervention kinds
==================

``peer_crash``
    The target endorsing peer(s) stop accepting endorsement requests at
    ``at``; queued work drains.  With ``duration``, the peers recover
    automatically at ``at + duration``; otherwise pair with an explicit
    ``peer_recover``.
``peer_recover``
    The target peer(s) accept work again.
``endorser_slowdown``
    The target peers' chaincode execution runs ``factor`` times slower
    from ``at`` (restored to nominal after ``duration``, if given).
``latency_spike``
    Every one-way network delay scheduled in the window is multiplied by
    ``factor``.
``orderer_degradation``
    The ordering service serves blocks ``factor`` times slower in the
    window (a struggling Raft leader).
``burst_arrivals``
    Workload transform: requests submitted inside ``[at, at+duration)``
    arrive ``factor`` times faster, compressed toward ``at``.
``conflict_storm``
    Workload transform: ``fraction`` of the window's ``activity``
    requests are retargeted onto ``hot_keys`` hot keys, manufacturing
    MVCC-conflict contention.

Targets: ``None`` (all endorsing peers), an organization name (``Org1``)
or a full peer name (``Org1-peer0``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

#: Kinds applied as kernel-scheduled interventions on the live network.
NETWORK_KINDS = frozenset(
    {
        "peer_crash",
        "peer_recover",
        "endorser_slowdown",
        "latency_spike",
        "orderer_degradation",
    }
)

#: Kinds applied as deterministic request-list transforms before the run.
WORKLOAD_KINDS = frozenset({"burst_arrivals", "conflict_storm"})

KINDS = NETWORK_KINDS | WORKLOAD_KINDS

#: Kinds whose effect is multiplicative and restorable.
_FACTOR_KINDS = frozenset(
    {"endorser_slowdown", "latency_spike", "orderer_degradation", "burst_arrivals"}
)

#: Kinds that require a window.
_WINDOWED_KINDS = frozenset({"burst_arrivals", "conflict_storm"})


@dataclass(frozen=True)
class Intervention:
    """One timed intervention of a scenario."""

    kind: str
    #: Simulated time (seconds) the intervention takes effect.
    at: float
    #: Window length; optional for the restorable network kinds (omitted
    #: means permanent), required for the workload transforms.
    duration: float | None = None
    #: Peer/org target for the endorser kinds (``None`` = every peer).
    target: str | None = None
    #: Multiplier for the ``*_slowdown`` / spike / degradation / burst kinds.
    factor: float = 2.0
    #: Share of the window's matching requests a conflict storm retargets.
    fraction: float = 0.5
    #: Size of the conflict storm's hot-key set.
    hot_keys: int = 4
    #: Activity a conflict storm retargets (key-first args assumed).
    activity: str = "update"

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown intervention kind {self.kind!r}; known: {sorted(KINDS)}"
            )
        if self.at < 0:
            raise ValueError(f"intervention time must be >= 0, got {self.at}")
        if self.duration is not None and self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.kind in _WINDOWED_KINDS and self.duration is None:
            raise ValueError(f"{self.kind} requires a duration")
        if self.kind in _FACTOR_KINDS and self.factor <= 0:
            raise ValueError(f"{self.kind} factor must be positive, got {self.factor}")
        if self.kind == "burst_arrivals" and self.factor <= 1.0:
            raise ValueError(
                f"burst_arrivals factor must exceed 1, got {self.factor}"
            )
        if self.kind == "conflict_storm":
            if not 0.0 < self.fraction <= 1.0:
                raise ValueError(
                    f"conflict_storm fraction must be in (0, 1], got {self.fraction}"
                )
            if self.hot_keys < 1:
                raise ValueError(
                    f"conflict_storm needs >= 1 hot key, got {self.hot_keys}"
                )

    @property
    def end(self) -> float | None:
        """End of the window, or ``None`` for permanent interventions."""
        return None if self.duration is None else self.at + self.duration

    def to_dict(self) -> dict:
        """Only the fields that matter for this kind — dumps double as
        authoring templates, so irrelevant defaults must not leak in."""
        data: dict = {"kind": self.kind, "at": self.at}
        if self.duration is not None:
            data["duration"] = self.duration
        if self.target is not None:
            data["target"] = self.target
        if self.kind in _FACTOR_KINDS:
            data["factor"] = self.factor
        if self.kind == "conflict_storm":
            data["fraction"] = self.fraction
            data["hot_keys"] = self.hot_keys
            data["activity"] = self.activity
        return data

    def describe(self) -> str:
        """One-line human summary, used by the CLI timeline."""
        parts = [f"{self.kind} @ {self.at:g}s"]
        if self.duration is not None:
            parts.append(f"for {self.duration:g}s")
        if self.target is not None:
            parts.append(f"target={self.target}")
        if self.kind in _FACTOR_KINDS:
            parts.append(f"x{self.factor:g}")
        if self.kind == "conflict_storm":
            parts.append(
                f"{self.fraction:.0%} of {self.activity!r} onto {self.hot_keys} keys"
            )
        return " ".join(parts)


@dataclass(frozen=True)
class ScenarioSpec:
    """A named scenario: an ordered list of timed interventions."""

    name: str
    interventions: tuple[Intervention, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario needs a name")
        if not self.interventions:
            raise ValueError(f"scenario {self.name!r} has no interventions")
        # Make list inputs ergonomic while keeping the dataclass hashable.
        object.__setattr__(self, "interventions", tuple(self.interventions))

    def network_interventions(self) -> list[Intervention]:
        """The kernel-scheduled interventions, in spec order."""
        return [iv for iv in self.interventions if iv.kind in NETWORK_KINDS]

    def workload_interventions(self) -> list[Intervention]:
        """The request-transform interventions, in spec order."""
        return [iv for iv in self.interventions if iv.kind in WORKLOAD_KINDS]

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "interventions": [iv.to_dict() for iv in self.interventions],
        }

    @staticmethod
    def from_dict(data: dict) -> "ScenarioSpec":
        try:
            interventions = tuple(
                Intervention(**record) for record in data["interventions"]
            )
            return ScenarioSpec(
                name=data["name"],
                interventions=interventions,
                description=data.get("description", ""),
            )
        except TypeError as exc:
            raise ValueError(f"malformed scenario spec: {exc}") from exc
        except KeyError as exc:
            raise ValueError(f"scenario spec missing field {exc.args[0]!r}") from exc

    def to_json(self, indent: int = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "ScenarioSpec":
        return ScenarioSpec.from_dict(json.loads(text))
