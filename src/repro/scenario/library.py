"""Named, ready-made scenarios.

Referenced by name from the bench registry (declarative, picklable,
cache-keyable) and from ``python -m repro scenario --name``.  Intervention
times sit early in the run (0.5-5 s) so the scenarios bite at test budgets
(hundreds of transactions ~ a few seconds of traffic) as well as at bench
scale.
"""

from __future__ import annotations

from repro.scenario.spec import Intervention, ScenarioSpec


def _crash_burst() -> ScenarioSpec:
    return ScenarioSpec(
        name="crash_burst",
        description=(
            "Org2's endorsing peer crashes during a 3x arrival burst and "
            "recovers 3 seconds later — endorsement failures pile up "
            "exactly while traffic peaks."
        ),
        interventions=(
            Intervention(kind="peer_crash", at=0.5, duration=3.0, target="Org2-peer0"),
            Intervention(kind="burst_arrivals", at=1.0, duration=3.0, factor=3.0),
        ),
    )


def _crash_recover() -> ScenarioSpec:
    return ScenarioSpec(
        name="crash_recover",
        description="Org1's endorsing peer is down for 2 seconds, then recovers.",
        interventions=(
            Intervention(kind="peer_crash", at=0.5, target="Org1-peer0"),
            Intervention(kind="peer_recover", at=2.5, target="Org1-peer0"),
        ),
    )


def _flaky_endorser() -> ScenarioSpec:
    return ScenarioSpec(
        name="flaky_endorser",
        description=(
            "Org1's peers execute chaincode 6x slower for 4 seconds while a "
            "25x latency spike hits the whole network for 2 of them."
        ),
        interventions=(
            Intervention(
                kind="endorser_slowdown", at=0.5, duration=4.0, target="Org1", factor=6.0
            ),
            Intervention(kind="latency_spike", at=1.0, duration=2.0, factor=25.0),
        ),
    )


def _degraded_orderer() -> ScenarioSpec:
    return ScenarioSpec(
        name="degraded_orderer",
        description=(
            "The ordering service serves blocks 4x slower for 4 seconds — "
            "a struggling Raft leader; blocks queue and latency balloons."
        ),
        interventions=(
            Intervention(kind="orderer_degradation", at=0.5, duration=4.0, factor=4.0),
        ),
    )


def _conflict_storm() -> ScenarioSpec:
    return ScenarioSpec(
        name="conflict_storm",
        description=(
            "60% of the window's updates retarget 4 hot keys for 4 seconds "
            "— an MVCC contention storm like a flash sale."
        ),
        interventions=(
            Intervention(
                kind="conflict_storm",
                at=0.5,
                duration=4.0,
                fraction=0.6,
                hot_keys=4,
                activity="update",
            ),
        ),
    )


def _chaos() -> ScenarioSpec:
    return ScenarioSpec(
        name="chaos",
        description=(
            "Everything at once: a burst during a crash window, a latency "
            "spike, a degraded orderer, and a late conflict storm."
        ),
        interventions=(
            Intervention(kind="peer_crash", at=0.5, duration=2.0, target="Org2-peer0"),
            Intervention(kind="latency_spike", at=1.0, duration=2.0, factor=10.0),
            Intervention(kind="orderer_degradation", at=2.0, duration=2.0, factor=3.0),
            Intervention(kind="burst_arrivals", at=0.5, duration=2.0, factor=2.0),
            Intervention(
                kind="conflict_storm", at=3.0, duration=2.0, fraction=0.5, hot_keys=4
            ),
        ),
    )


def _partial_outage() -> ScenarioSpec:
    return ScenarioSpec(
        name="partial_outage",
        description=(
            "A realistic cascading incident: Org2's peer crashes while "
            "Org1's surviving peers grind 60x slower (endorsement queues "
            "blow past the client timeout), a burst piles traffic on, and "
            "a conflict storm hits the recovery window — every abort "
            "cause in docs/FAILURES.md shows up in one run."
        ),
        interventions=(
            Intervention(kind="peer_crash", at=0.5, duration=3.0, target="Org2-peer0"),
            Intervention(
                kind="endorser_slowdown", at=0.5, duration=2.5, target="Org1", factor=60.0
            ),
            Intervention(kind="burst_arrivals", at=0.5, duration=2.0, factor=2.0),
            Intervention(
                kind="conflict_storm",
                at=2.0,
                duration=3.0,
                fraction=0.5,
                hot_keys=4,
                activity="update",
            ),
        ),
    )


def _flash_crowd_outage() -> ScenarioSpec:
    """Fuzzer-promoted (seed 11, composition 22; severity 0.87)."""
    return ScenarioSpec(
        name="flash_crowd_outage",
        description=(
            "Fuzzer-discovered worst case: a 900-TPS flash crowd lands "
            "exactly as Org2's peer crashes, Org1's region lags 3x, and a "
            "drifting single-key write storm rides the wave — "
            "policy_crashed_peer dominates (crashed peers cannot endorse, "
            "the policy goes unsatisfied) with ~46% aborts and a retry "
            "storm on top."
        ),
        interventions=(
            Intervention(
                kind="rate_curve", at=0.3, profile=((0.0, 900.0), (0.25, 150.0))
            ),
            Intervention(kind="peer_crash", at=0.45, duration=1.0, target="Org2-peer0"),
            Intervention(
                kind="region_lag", at=0.8, duration=1.0, target="Org1", factor=3.0
            ),
            Intervention(
                kind="hot_key_drift",
                at=0.3,
                duration=0.8,
                fraction=0.25,
                hot_keys=1,
                activity="write",
                phases=4,
            ),
        ),
    )


def _org_blackout_storm() -> ScenarioSpec:
    """Fuzzer-promoted (seed 11, composition 5; severity 0.82)."""
    return ScenarioSpec(
        name="org_blackout_storm",
        description=(
            "Fuzzer-discovered: all of Org2's endorsing peers black out "
            "for 0.8 s, then a read-targeted conflict storm hits 2 hot "
            "keys during the recovery — policy_crashed_peer dominates "
            "(crashed peers cannot endorse) with ~45% aborts; the storm "
            "converts the tail into MVCC/phantom conflicts."
        ),
        interventions=(
            Intervention(kind="peer_crash", at=0.3, duration=0.8, target="Org2"),
            Intervention(
                kind="conflict_storm",
                at=0.8,
                duration=0.8,
                fraction=0.75,
                hot_keys=2,
                activity="read",
            ),
        ),
    )


def _rolling_contention() -> ScenarioSpec:
    """Fuzzer-promoted (seed 11, composition 19; severity 0.62)."""
    return ScenarioSpec(
        name="rolling_contention",
        description=(
            "Fuzzer-discovered rolling incident: an update storm on 8 hot "
            "keys, a 6x orderer degradation, an Org1 crash window, then a "
            "drifting write storm — failures roll through every cause "
            "(policy_crashed_peer dominates, MVCC and phantom conflicts "
            "follow) at ~35% aborts."
        ),
        interventions=(
            Intervention(
                kind="conflict_storm",
                at=0.1,
                duration=0.4,
                fraction=0.5,
                hot_keys=8,
                activity="update",
            ),
            Intervention(kind="orderer_degradation", at=0.2, duration=0.6, factor=6.0),
            Intervention(kind="peer_crash", at=0.3, duration=0.4, target="Org1"),
            Intervention(
                kind="hot_key_drift",
                at=0.8,
                duration=1.0,
                fraction=0.25,
                hot_keys=4,
                activity="write",
                phases=3,
            ),
        ),
    )


_BUILDERS = {
    "crash_burst": _crash_burst,
    "crash_recover": _crash_recover,
    "flaky_endorser": _flaky_endorser,
    "degraded_orderer": _degraded_orderer,
    "conflict_storm": _conflict_storm,
    "chaos": _chaos,
    "partial_outage": _partial_outage,
    # Promoted from `repro fuzz --seed 11 --budget 24` (see docs/SCENARIOS.md):
    # the most severe oracle-clean compositions, digests pinned in
    # tests/golden/fuzzed__library_digests.json.
    "flash_crowd_outage": _flash_crowd_outage,
    "org_blackout_storm": _org_blackout_storm,
    "rolling_contention": _rolling_contention,
}


def scenario_names() -> list[str]:
    """All built-in scenario names, in definition order."""
    return list(_BUILDERS)


def get_scenario(name: str) -> ScenarioSpec:
    """Look a built-in scenario up by name."""
    try:
        return _BUILDERS[name]()
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(_BUILDERS)}"
        ) from None
