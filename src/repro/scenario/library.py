"""Named, ready-made scenarios.

Referenced by name from the bench registry (declarative, picklable,
cache-keyable) and from ``python -m repro scenario --name``.  Intervention
times sit early in the run (0.5-5 s) so the scenarios bite at test budgets
(hundreds of transactions ~ a few seconds of traffic) as well as at bench
scale.
"""

from __future__ import annotations

from repro.scenario.spec import Intervention, ScenarioSpec


def _crash_burst() -> ScenarioSpec:
    return ScenarioSpec(
        name="crash_burst",
        description=(
            "Org2's endorsing peer crashes during a 3x arrival burst and "
            "recovers 3 seconds later — endorsement failures pile up "
            "exactly while traffic peaks."
        ),
        interventions=(
            Intervention(kind="peer_crash", at=0.5, duration=3.0, target="Org2-peer0"),
            Intervention(kind="burst_arrivals", at=1.0, duration=3.0, factor=3.0),
        ),
    )


def _crash_recover() -> ScenarioSpec:
    return ScenarioSpec(
        name="crash_recover",
        description="Org1's endorsing peer is down for 2 seconds, then recovers.",
        interventions=(
            Intervention(kind="peer_crash", at=0.5, target="Org1-peer0"),
            Intervention(kind="peer_recover", at=2.5, target="Org1-peer0"),
        ),
    )


def _flaky_endorser() -> ScenarioSpec:
    return ScenarioSpec(
        name="flaky_endorser",
        description=(
            "Org1's peers execute chaincode 6x slower for 4 seconds while a "
            "25x latency spike hits the whole network for 2 of them."
        ),
        interventions=(
            Intervention(
                kind="endorser_slowdown", at=0.5, duration=4.0, target="Org1", factor=6.0
            ),
            Intervention(kind="latency_spike", at=1.0, duration=2.0, factor=25.0),
        ),
    )


def _degraded_orderer() -> ScenarioSpec:
    return ScenarioSpec(
        name="degraded_orderer",
        description=(
            "The ordering service serves blocks 4x slower for 4 seconds — "
            "a struggling Raft leader; blocks queue and latency balloons."
        ),
        interventions=(
            Intervention(kind="orderer_degradation", at=0.5, duration=4.0, factor=4.0),
        ),
    )


def _conflict_storm() -> ScenarioSpec:
    return ScenarioSpec(
        name="conflict_storm",
        description=(
            "60% of the window's updates retarget 4 hot keys for 4 seconds "
            "— an MVCC contention storm like a flash sale."
        ),
        interventions=(
            Intervention(
                kind="conflict_storm",
                at=0.5,
                duration=4.0,
                fraction=0.6,
                hot_keys=4,
                activity="update",
            ),
        ),
    )


def _chaos() -> ScenarioSpec:
    return ScenarioSpec(
        name="chaos",
        description=(
            "Everything at once: a burst during a crash window, a latency "
            "spike, a degraded orderer, and a late conflict storm."
        ),
        interventions=(
            Intervention(kind="peer_crash", at=0.5, duration=2.0, target="Org2-peer0"),
            Intervention(kind="latency_spike", at=1.0, duration=2.0, factor=10.0),
            Intervention(kind="orderer_degradation", at=2.0, duration=2.0, factor=3.0),
            Intervention(kind="burst_arrivals", at=0.5, duration=2.0, factor=2.0),
            Intervention(
                kind="conflict_storm", at=3.0, duration=2.0, fraction=0.5, hot_keys=4
            ),
        ),
    )


def _partial_outage() -> ScenarioSpec:
    return ScenarioSpec(
        name="partial_outage",
        description=(
            "A realistic cascading incident: Org2's peer crashes while "
            "Org1's surviving peers grind 60x slower (endorsement queues "
            "blow past the client timeout), a burst piles traffic on, and "
            "a conflict storm hits the recovery window — every abort "
            "cause in docs/FAILURES.md shows up in one run."
        ),
        interventions=(
            Intervention(kind="peer_crash", at=0.5, duration=3.0, target="Org2-peer0"),
            Intervention(
                kind="endorser_slowdown", at=0.5, duration=2.5, target="Org1", factor=60.0
            ),
            Intervention(kind="burst_arrivals", at=0.5, duration=2.0, factor=2.0),
            Intervention(
                kind="conflict_storm",
                at=2.0,
                duration=3.0,
                fraction=0.5,
                hot_keys=4,
                activity="update",
            ),
        ),
    )


_BUILDERS = {
    "crash_burst": _crash_burst,
    "crash_recover": _crash_recover,
    "flaky_endorser": _flaky_endorser,
    "degraded_orderer": _degraded_orderer,
    "conflict_storm": _conflict_storm,
    "chaos": _chaos,
    "partial_outage": _partial_outage,
}


def scenario_names() -> list[str]:
    """All built-in scenario names, in definition order."""
    return list(_BUILDERS)


def get_scenario(name: str) -> ScenarioSpec:
    """Look a built-in scenario up by name."""
    try:
        return _BUILDERS[name]()
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(_BUILDERS)}"
        ) from None
