"""Seeded scenario fuzzing: generate, check, shrink, rank, promote.

The library's hand-written scenarios cover an author-biased sliver of the
fault space.  This module turns the scenario engine into correctness
tooling for the whole stack: a fully seeded generator composes random
:class:`~repro.scenario.spec.Intervention` sequences (faults *and* the
workload-realism primitives — rate curves, drifting hot keys, regional
lag, mix shifts), every composition runs through a battery of
**differential oracles**, failing compositions are greedily **shrunk** to
a minimal reproducing spec, and surviving compositions are ranked by how
much they hurt (abort rate + retry-storm pressure, labeled from the
8-cause taxonomy of docs/FAILURES.md) so the worst ones can be promoted
into :mod:`repro.scenario.library` as named, golden-pinned scenarios.

Oracles (each returns a list of violation strings, empty = pass):

``determinism``
    The same seed + spec must reproduce the run bit for bit: identical
    kernel event trace, identical :func:`~repro.scenario.engine.run_digest`
    and identical forensics digest across two fresh executions.
``stream_batch``
    A streamed run (workload transforms pre-applied, network
    interventions live) must produce the same
    :class:`~repro.analysis.forensics.ForensicsReport` digest and the
    same :class:`~repro.core.metrics.LogMetrics` as the batch pipeline.
``conservation``
    Transaction counts must balance: every issued transaction (original
    or retry) ends exactly once — committed or aborted — and the
    forensics taxonomy accounts for every failure.
``roundtrip``
    Every generated spec must survive JSON serialization unchanged.
``batch_equivalence``
    The vectorized batch kernel tier (:mod:`repro.sim.batch`) must
    reproduce the primary execution bit for bit: identical kernel event
    trace, identical run digest and identical forensics digest.

Everything is deterministic: the generator derives one private
``random.Random`` per (campaign seed, composition index) via SHA-256, so
``repro fuzz --seed S --budget N`` is bit-reproducible and a persisted
corpus (one JSON file per composition plus a ``campaign.json`` manifest)
can be replayed in CI to pin both oracle verdicts and run digests.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.analysis.forensics import (
    CAUSES,
    ForensicsAccumulator,
    ForensicsReport,
    forensics_report,
    report_digest,
)
from repro.fabric.network import FabricNetwork
from repro.fabric.retry import RetryPolicy
from repro.scenario.engine import ScenarioEngine, run_digest
from repro.scenario.spec import (
    KINDS,
    MIX_FROM_ACTIVITIES,
    MIX_TO_ACTIVITIES,
    Intervention,
    ScenarioSpec,
)

#: Corpus on-disk format version (bump on incompatible change).
CORPUS_FORMAT = 1

#: The oracle battery, in reporting order.
ORACLES = (
    "determinism",
    "stream_batch",
    "conservation",
    "roundtrip",
    "batch_equivalence",
    "control_equivalence",
)

#: One-line taxonomy explanations used to auto-label *why* a surviving
#: composition hurts (definitions: docs/FAILURES.md).
CAUSE_EXPLANATIONS = {
    "mvcc_conflict": (
        "stale reads are invalidated at validation when a hot key commits first"
    ),
    "phantom_conflict": "range scans observe a key set that changed before commit",
    "policy_endorsement_timeout": (
        "endorser queues exceed the client timeout, so endorsements go missing"
    ),
    "policy_crashed_peer": (
        "crashed peers cannot endorse and the policy goes unsatisfied"
    ),
    "policy_unsatisfied": (
        "the submitted endorsement set does not satisfy the channel policy"
    ),
    "early_abort_stale_read": (
        "the early-abort mitigation drops already-stale envelopes at the client"
    ),
    "early_abort_scheduler": (
        "the conflict-aware scheduler drops transactions it cannot place"
    ),
    "early_abort_chaincode": (
        "the chaincode itself rejects the transaction during endorsement"
    ),
}

# -- generation palettes ----------------------------------------------------------
#
# Discrete value palettes keep every generated composition valid by
# construction (spec validation would reject anything else) and biased
# toward the first ~1.5 simulated seconds, where a test-sized workload
# (a few hundred transactions at 300 TPS) actually lives.

_TIMES = (0.1, 0.2, 0.3, 0.45, 0.6, 0.8)
_DURATIONS = (0.25, 0.4, 0.6, 0.8, 1.0)
_SPIKE_FACTORS = (2.0, 3.0, 6.0, 10.0, 25.0)
_SLOW_FACTORS = (2.0, 4.0, 8.0, 20.0, 60.0)
_BURST_FACTORS = (2.0, 3.0, 6.0)
_ORDERER_FACTORS = (2.0, 3.0, 6.0)
_REGION_FACTORS = (3.0, 10.0, 40.0)
_PEER_TARGETS = ("Org1", "Org2", "Org1-peer0", "Org2-peer0")
_ORG_TARGETS = ("Org1", "Org2")
_FRACTIONS = (0.25, 0.5, 0.75, 1.0)
_HOT_KEY_COUNTS = (1, 2, 4, 8)
_STORM_ACTIVITIES = ("update", "write", "read")
_DRIFT_PHASES = (2, 3, 4)
_MIX_PAIRS = tuple(
    sorted(
        (source, target)
        for source in MIX_FROM_ACTIVITIES
        for target in MIX_TO_ACTIVITIES
        if source != target
    )
)
#: Diurnal / flash-crowd shapes around the 300 TPS default send rate.
_PROFILES = (
    ((0.0, 600.0), (0.5, 120.0)),
    ((0.0, 120.0), (0.3, 900.0), (0.6, 200.0)),
    ((0.0, 300.0), (0.4, 80.0), (0.9, 500.0)),
    ((0.0, 900.0), (0.25, 150.0)),
)
#: Kinds the generator draws from (``peer_recover`` is omitted: crashes
#: are generated with a recovery duration instead of a paired event).
GENERATED_KINDS = tuple(sorted(KINDS - {"peer_recover"}))


def _rng_for(seed: int, index: int) -> random.Random:
    """A private, stable RNG per (campaign seed, composition index)."""
    digest = hashlib.sha256(f"repro-fuzz:{seed}:{index}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def _generate_intervention(rng: random.Random) -> Intervention:
    """Draw one valid intervention from the palettes."""
    kind = rng.choice(GENERATED_KINDS)
    at = rng.choice(_TIMES)
    duration = rng.choice(_DURATIONS)
    if kind == "peer_crash":
        return Intervention(
            kind=kind, at=at, duration=duration, target=rng.choice(_PEER_TARGETS)
        )
    if kind == "endorser_slowdown":
        return Intervention(
            kind=kind,
            at=at,
            duration=duration,
            target=rng.choice(_PEER_TARGETS + (None,)),
            factor=rng.choice(_SLOW_FACTORS),
        )
    if kind == "latency_spike":
        return Intervention(
            kind=kind, at=at, duration=duration, factor=rng.choice(_SPIKE_FACTORS)
        )
    if kind == "orderer_degradation":
        return Intervention(
            kind=kind, at=at, duration=duration, factor=rng.choice(_ORDERER_FACTORS)
        )
    if kind == "region_lag":
        return Intervention(
            kind=kind,
            at=at,
            duration=duration,
            target=rng.choice(_ORG_TARGETS),
            factor=rng.choice(_REGION_FACTORS),
        )
    if kind == "burst_arrivals":
        return Intervention(
            kind=kind, at=at, duration=duration, factor=rng.choice(_BURST_FACTORS)
        )
    if kind == "conflict_storm":
        return Intervention(
            kind=kind,
            at=at,
            duration=duration,
            fraction=rng.choice(_FRACTIONS),
            hot_keys=rng.choice(_HOT_KEY_COUNTS),
            activity=rng.choice(_STORM_ACTIVITIES),
        )
    if kind == "hot_key_drift":
        return Intervention(
            kind=kind,
            at=at,
            duration=duration,
            fraction=rng.choice(_FRACTIONS),
            hot_keys=rng.choice(_HOT_KEY_COUNTS),
            activity=rng.choice(_STORM_ACTIVITIES),
            phases=rng.choice(_DRIFT_PHASES),
        )
    if kind == "mix_shift":
        source, target = rng.choice(_MIX_PAIRS)
        return Intervention(
            kind=kind,
            at=at,
            duration=duration,
            fraction=rng.choice(_FRACTIONS),
            from_activity=source,
            to_activity=target,
        )
    # kind == "rate_curve"
    return Intervention(kind=kind, at=at, profile=rng.choice(_PROFILES))


def generate_spec(seed: int, index: int, max_interventions: int = 4) -> ScenarioSpec:
    """The ``index``-th composition of campaign ``seed`` (pure function)."""
    if max_interventions < 1:
        raise ValueError(f"need >= 1 intervention, got {max_interventions}")
    rng = _rng_for(seed, index)
    count = rng.randint(1, max_interventions)
    return ScenarioSpec(
        name=f"fuzz_{seed}_{index:04d}",
        description=f"fuzzer composition (seed {seed}, index {index})",
        interventions=tuple(_generate_intervention(rng) for _ in range(count)),
    )


# -- execution harness ------------------------------------------------------------


@dataclass(frozen=True)
class FuzzConfig:
    """One fuzz campaign's knobs (fully determines its output)."""

    seed: int = 11
    budget: int = 20
    #: Named synthetic experiment providing the base workload.
    base: str = "default"
    transactions: int = 400
    #: Total client attempts per logical transaction (> 1 arms retries, so
    #: retry storms are observable; 1 restores fire-and-forget clients).
    retry_attempts: int = 2
    max_interventions: int = 4
    oracles: tuple[str, ...] = ORACLES
    shrink: bool = True

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise ValueError(f"budget must be >= 1, got {self.budget}")
        unknown = set(self.oracles) - set(ORACLES)
        if unknown:
            raise ValueError(
                f"unknown oracles {sorted(unknown)}; known: {list(ORACLES)}"
            )


@dataclass(frozen=True)
class _Execution:
    """One finished batch run of a composition."""

    network: FabricNetwork
    digest: str
    report: ForensicsReport
    forensics_digest: str
    trace: tuple


class FuzzHarness:
    """Executes compositions against one shared base workload.

    The bundle (config, contract family, requests) is built once per
    campaign; every execution gets a fresh network, so runs never share
    mutable state.  Every oracle in :data:`ORACLES` runs through this object.
    """

    def __init__(self, config: FuzzConfig) -> None:
        # Deferred import: repro.bench imports the scenario library.
        from repro.bench.experiments import make_synthetic

        self.config = config
        network_config, family, requests = make_synthetic(
            config.base, seed=config.seed, total_transactions=config.transactions
        )()
        if config.retry_attempts > 1:
            network_config = dataclasses.replace(
                network_config, retry=RetryPolicy(max_attempts=config.retry_attempts)
            )
        self.network_config = network_config
        self._family = family
        self.requests = requests
        self._primary: dict[str, _Execution] = {}

    def _contracts(self):
        return self._family.deploy().contracts

    def execute(
        self, spec: ScenarioSpec, kernel_tier: str | None = None
    ) -> _Execution:
        """One fresh batch run of ``spec`` over the base workload.

        ``kernel_tier`` forces a specific kernel implementation for the
        ``batch_equivalence`` oracle; ``None`` keeps the campaign config
        (and therefore the ``REPRO_KERNEL`` environment default).
        """
        config = self.network_config
        if kernel_tier is not None:
            config = config.copy()
            config.kernel_tier = kernel_tier
        network = FabricNetwork(config, self._contracts(), scenario=spec)
        trace = network.kernel.enable_trace()
        network.run(list(self.requests))
        report = forensics_report(network)
        return _Execution(
            network=network,
            digest=run_digest(network),
            report=report,
            forensics_digest=report_digest(report),
            trace=tuple(trace),
        )

    def primary(self, spec: ScenarioSpec) -> _Execution:
        """The composition's reference execution (memoized per spec name)."""
        key = spec.to_json()
        if key not in self._primary:
            self._primary[key] = self.execute(spec)
        return self._primary[key]

    # -- oracles -----------------------------------------------------------------

    def check_determinism(self, spec: ScenarioSpec) -> list[str]:
        """Same seed + spec must reproduce the run bit for bit."""
        first = self.primary(spec)
        second = self.execute(spec)
        violations = []
        if first.trace != second.trace:
            violations.append("kernel event traces diverged across identical runs")
        if first.digest != second.digest:
            violations.append(
                f"run digests diverged: {first.digest[:12]} != {second.digest[:12]}"
            )
        if first.forensics_digest != second.forensics_digest:
            violations.append("forensics digests diverged across identical runs")
        return violations

    def check_stream_batch(self, spec: ScenarioSpec) -> list[str]:
        """Streaming pipeline must equal the batch pipeline digest for digest."""
        from repro.core.metrics import MetricsAccumulator, compute_metrics
        from repro.logs.extract import extract_blockchain_log
        from repro.logs.stream import RunStream

        batch = self.primary(spec)

        # Workload transforms need the full request list, so they are
        # applied up front by a throwaway engine; only the network
        # interventions ride along into the streamed run.
        pre = ScenarioEngine(spec)
        transformed = pre.transform_requests(list(self.requests))
        ordered = sorted(transformed, key=lambda request: request.submit_time)
        network_ivs = tuple(spec.network_interventions())
        live_spec = (
            dataclasses.replace(spec, interventions=network_ivs)
            if network_ivs
            else None
        )

        stream = RunStream()
        forensics = ForensicsAccumulator()
        metrics = MetricsAccumulator(interval_seconds=1.0)
        stream.add_transaction_consumer(forensics)
        stream.add_record_consumer(metrics)
        network = FabricNetwork(
            self.network_config, self._contracts(), scenario=live_spec, stream=stream
        )
        network.run_streamed(ordered)

        timeline = list(pre.timeline)
        if network.scenario_engine is not None:
            timeline += network.scenario_engine.timeline
        streamed_report = forensics.finish(
            scenario=spec.name,
            mitigation=self.network_config.mitigation,
            timeline=sorted(timeline, key=lambda entry: (entry[0], entry[1])),
            resubmissions=network.retries_issued,
            recovered=network.retries_recovered,
            exhausted=network.retries_exhausted,
        )

        violations = []
        if report_digest(streamed_report) != batch.forensics_digest:
            violations.append("streamed forensics digest != batch forensics digest")
        metrics.config = stream.config
        batch_metrics = compute_metrics(extract_blockchain_log(batch.network))
        if metrics.finish() != batch_metrics:
            violations.append("streamed LogMetrics != batch LogMetrics")
        return violations

    def check_conservation(self, spec: ScenarioSpec) -> list[str]:
        """Every issued transaction must end exactly once, fully attributed."""
        run = self.primary(spec)
        network = run.network
        report = run.report
        violations = []
        issued = len(self.requests) + network.retries_issued
        committed = sum(
            1 for _ in network.ledger.transactions(include_config=False)
        )
        aborted = len(network.aborted)
        if committed + aborted != issued:
            violations.append(
                f"count conservation broken: {committed} committed + {aborted} "
                f"aborted != {issued} issued"
            )
        if report.total_issued != issued:
            violations.append(
                f"forensics total_issued {report.total_issued} != {issued} issued"
            )
        if report.successes + report.failures != report.total_issued:
            violations.append(
                f"successes {report.successes} + failures {report.failures} "
                f"!= total_issued {report.total_issued}"
            )
        attributed = sum(report.cause_counts.values())
        if attributed != report.failures:
            violations.append(
                f"taxonomy attributes {attributed} failures, report has "
                f"{report.failures}"
            )
        if report.retry.recovered > report.retry.resubmissions:
            violations.append(
                f"{report.retry.recovered} retries recovered out of only "
                f"{report.retry.resubmissions} resubmissions"
            )
        if report.retry.exhausted > report.failures:
            violations.append(
                f"{report.retry.exhausted} retries exhausted but only "
                f"{report.failures} failures"
            )
        return violations

    def check_roundtrip(self, spec: ScenarioSpec) -> list[str]:
        """JSON round-trips must reproduce the spec exactly."""
        violations = []
        revived = ScenarioSpec.from_json(spec.to_json())
        if revived != spec:
            violations.append("from_json(to_json(spec)) != spec")
        rehydrated = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        if rehydrated != spec:
            violations.append("from_dict(json(to_dict(spec))) != spec")
        return violations

    def check_batch_equivalence(self, spec: ScenarioSpec) -> list[str]:
        """The batch kernel tier must reproduce the primary run bit for bit.

        The primary execution runs under the campaign's resolved tier
        (the reference kernel by default); the comparison run forces
        ``kernel_tier="batch"``.  Under ``REPRO_KERNEL=batch`` both runs
        use the batch tier, which degrades this oracle to a batch-tier
        determinism check — the cross-tier comparison then happens in the
        reference-tier CI leg, where the same corpus digests must hold.
        """
        reference = self.primary(spec)
        batch = self.execute(spec, kernel_tier="batch")
        violations = []
        if reference.trace != batch.trace:
            violations.append("batch-tier kernel event trace diverged from primary")
        if reference.digest != batch.digest:
            violations.append(
                f"batch-tier run digest diverged: {batch.digest[:12]} != "
                f"{reference.digest[:12]}"
            )
        if reference.forensics_digest != batch.forensics_digest:
            violations.append("batch-tier forensics digest diverged from primary")
        return violations

    def check_control_equivalence(self, spec: ScenarioSpec) -> list[str]:
        """The SLO-guardian controller must preserve the differential invariants.

        Three sub-checks against the composition: a noop-policy controller
        reproduces the primary (controller-off) run digest bit for bit —
        controller *presence* never changes outcomes; a guardian-on run
        is deterministic across replays (run digest and control-timeline
        digest both stable); and the batch kernel tier reproduces the
        guardian-on reference run.  Like ``batch_equivalence``, under
        ``REPRO_KERNEL=batch`` the last sub-check degrades to a
        batch-tier determinism check.
        """
        from repro.control.spec import ControlSpec

        def controlled(
            policy: str, kernel_tier: str | None = None
        ) -> tuple[str, str]:
            config = self.network_config.copy()
            config.control = ControlSpec(policy=policy)
            if kernel_tier is not None:
                config.kernel_tier = kernel_tier
            network = FabricNetwork(config, self._contracts(), scenario=spec)
            network.run(list(self.requests))
            return run_digest(network), network.controller.timeline.digest()

        violations = []
        primary = self.primary(spec)
        noop_digest, _ = controlled("noop")
        if noop_digest != primary.digest:
            violations.append(
                "noop-policy controller perturbed the run digest: "
                f"{noop_digest[:12]} != {primary.digest[:12]}"
            )
        first = controlled("guardian")
        second = controlled("guardian")
        if first != second:
            violations.append("guardian-on runs diverged across identical replays")
        batch = controlled("guardian", kernel_tier="batch")
        if batch != first:
            violations.append(
                "guardian-on batch tier diverged from the reference tier"
            )
        return violations

    def run_oracles(self, spec: ScenarioSpec) -> dict[str, list[str]]:
        """Run the configured oracle subset; name -> violations."""
        checks: dict[str, Callable[[ScenarioSpec], list[str]]] = {
            "determinism": self.check_determinism,
            "stream_batch": self.check_stream_batch,
            "conservation": self.check_conservation,
            "roundtrip": self.check_roundtrip,
            "batch_equivalence": self.check_batch_equivalence,
            "control_equivalence": self.check_control_equivalence,
        }
        return {
            oracle: checks[oracle](spec)
            for oracle in ORACLES
            if oracle in self.config.oracles
        }


# -- shrinking --------------------------------------------------------------------


def shrink_spec(
    spec: ScenarioSpec, failing: Callable[[ScenarioSpec], bool]
) -> ScenarioSpec:
    """Greedily shrink a failing composition to a minimal reproducer.

    Repeatedly tries dropping one intervention at a time, keeping any
    candidate that still fails, until no single removal preserves the
    failure (a 1-minimal spec).  ``failing`` must be deterministic; the
    input spec is returned unchanged if it does not fail at all.
    """
    if not failing(spec):
        return spec
    current = spec
    reduced = True
    while reduced and len(current.interventions) > 1:
        reduced = False
        for index in range(len(current.interventions)):
            interventions = (
                current.interventions[:index] + current.interventions[index + 1 :]
            )
            candidate = dataclasses.replace(current, interventions=interventions)
            if failing(candidate):
                current = candidate
                reduced = True
                break
    return current


# -- severity + labeling ----------------------------------------------------------


@dataclass(frozen=True)
class FuzzLabel:
    """Why a surviving composition hurts, quantified and explained."""

    severity: float
    abort_rate: float
    retry_rate: float
    dominant_cause: str | None
    cause_counts: dict[str, int]
    why: str

    def to_dict(self) -> dict:
        """JSON-able form (corpus files)."""
        return {
            "severity": self.severity,
            "abort_rate": self.abort_rate,
            "retry_rate": self.retry_rate,
            "dominant_cause": self.dominant_cause,
            "cause_counts": dict(self.cause_counts),
            "why": self.why,
        }


def label_report(report: ForensicsReport) -> FuzzLabel:
    """Score and explain one run from its forensics report.

    Severity is abort pressure plus retry-storm pressure: failures per
    issued transaction plus resubmissions per issued transaction.  The
    dominant taxonomy cause (ties broken in taxonomy order) supplies the
    explanation.
    """
    total = max(1, report.total_issued)
    abort_rate = round(report.failures / total, 6)
    retry_rate = round(report.retry.resubmissions / total, 6)
    present = {
        cause: count for cause, count in report.cause_counts.items() if count > 0
    }
    dominant = None
    if present:
        # Ties resolve in taxonomy order, not dict order.
        best = max(present.values())
        dominant = next(cause for cause in CAUSES if present.get(cause, 0) == best)
    if dominant is None:
        why = "no failures observed"
    else:
        why = (
            f"{dominant} dominates ({present[dominant]} of {report.failures} "
            f"failures): {CAUSE_EXPLANATIONS[dominant]}"
        )
    return FuzzLabel(
        severity=round(abort_rate + retry_rate, 6),
        abort_rate=abort_rate,
        retry_rate=retry_rate,
        dominant_cause=dominant,
        cause_counts=present,
        why=why,
    )


# -- campaign ---------------------------------------------------------------------


@dataclass(frozen=True)
class FuzzEntry:
    """One composition's campaign outcome."""

    index: int
    spec: ScenarioSpec
    #: Oracle name -> violations (empty lists = survivor).
    oracles: dict[str, list[str]]
    run_digest: str
    forensics_digest: str
    label: FuzzLabel
    #: The original composition when the stored spec was shrunk.
    shrunk_from: ScenarioSpec | None = None

    @property
    def violations(self) -> list[str]:
        """All oracle violations, prefixed with the oracle name."""
        return [
            f"{oracle}: {violation}"
            for oracle, found in self.oracles.items()
            for violation in found
        ]

    @property
    def survived(self) -> bool:
        """True when every oracle passed."""
        return not self.violations

    def to_dict(self) -> dict:
        """The corpus file payload for this entry."""
        data = {
            "format_version": CORPUS_FORMAT,
            "index": self.index,
            "spec": self.spec.to_dict(),
            "oracles": {k: list(v) for k, v in self.oracles.items()},
            "run_digest": self.run_digest,
            "forensics_digest": self.forensics_digest,
            "label": self.label.to_dict(),
        }
        if self.shrunk_from is not None:
            data["shrunk_from"] = self.shrunk_from.to_dict()
        return data


@dataclass(frozen=True)
class FuzzCampaign:
    """A finished fuzz campaign: config + per-composition entries."""

    config: FuzzConfig
    entries: tuple[FuzzEntry, ...]

    def survivors(self) -> list[FuzzEntry]:
        """Oracle-clean entries, most severe first (name-tied stable)."""
        return sorted(
            (entry for entry in self.entries if entry.survived),
            key=lambda entry: (-entry.label.severity, entry.spec.name),
        )

    def failures(self) -> list[FuzzEntry]:
        """Entries with at least one oracle violation, in index order."""
        return [entry for entry in self.entries if not entry.survived]

    def top_specs(self, count: int) -> list[FuzzEntry]:
        """Promotion candidates: the ``count`` most severe survivors."""
        return self.survivors()[:count]


def run_campaign(config: FuzzConfig) -> FuzzCampaign:
    """Run one seeded fuzz campaign to completion (bit-reproducible)."""
    harness = FuzzHarness(config)
    entries = []
    for index in range(config.budget):
        spec = generate_spec(config.seed, index, config.max_interventions)
        oracles = harness.run_oracles(spec)
        shrunk_from = None
        if config.shrink and any(oracles.values()):
            failing_oracles = [name for name, found in oracles.items() if found]

            def still_failing(candidate: ScenarioSpec) -> bool:
                results = harness.run_oracles(candidate)
                return any(results[name] for name in failing_oracles)

            minimal = shrink_spec(spec, still_failing)
            if minimal is not spec:
                shrunk_from = spec
                spec = minimal
                oracles = harness.run_oracles(spec)
        run = harness.primary(spec)
        entries.append(
            FuzzEntry(
                index=index,
                spec=spec,
                oracles=oracles,
                run_digest=run.digest,
                forensics_digest=run.forensics_digest,
                label=label_report(run.report),
                shrunk_from=shrunk_from,
            )
        )
    return FuzzCampaign(config=config, entries=tuple(entries))


# -- corpus persistence -----------------------------------------------------------


def save_corpus(campaign: FuzzCampaign, directory: str | Path) -> Path:
    """Persist a campaign as a replayable corpus; returns the manifest path.

    Layout: one ``<spec name>.json`` per composition (spec, oracle
    verdicts, digests, label) plus a ``campaign.json`` manifest carrying
    the :class:`FuzzConfig` and the entry list.  Everything is written
    with sorted keys so identical campaigns produce identical bytes.
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    names = []
    for entry in campaign.entries:
        name = f"{entry.spec.name}.json"
        names.append(name)
        (root / name).write_text(
            json.dumps(entry.to_dict(), indent=1, sort_keys=True) + "\n"
        )
    manifest = {
        "format_version": CORPUS_FORMAT,
        "config": dataclasses.asdict(campaign.config),
        "entries": names,
        "violations": sum(len(entry.violations) for entry in campaign.entries),
    }
    manifest_path = root / "campaign.json"
    manifest_path.write_text(json.dumps(manifest, indent=1, sort_keys=True) + "\n")
    return manifest_path


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of replaying one corpus entry."""

    name: str
    #: Oracle violations found during the replay (must be empty).
    violations: list[str]
    #: Digest drift against the stored corpus entry (must be empty).
    drift: list[str]

    @property
    def clean(self) -> bool:
        """True when the replay reproduced the corpus exactly."""
        return not self.violations and not self.drift


def replay_corpus(directory: str | Path) -> list[ReplayResult]:
    """Re-run every corpus entry and diff it against the stored verdicts.

    CI's fuzz-smoke step: a committed corpus replayed on every push pins
    oracle cleanliness *and* behavioural digests — any engine change that
    shifts a fuzzed run's outcome shows up as digest drift here before it
    can reach a promoted scenario.

    A corpus directory may nest *sub-campaigns* — subdirectories with
    their own ``campaign.json`` (e.g. a campaign against a skewed-key
    base workload).  They are replayed too, in sorted directory order,
    with their results prefixed ``<subdir>/``; one CI invocation covers
    every committed campaign.
    """
    root = Path(directory)
    results = _replay_campaign(root)
    for child in sorted(path for path in root.iterdir() if path.is_dir()):
        if (child / "campaign.json").is_file():
            results.extend(
                dataclasses.replace(result, name=f"{child.name}/{result.name}")
                for result in _replay_campaign(child)
            )
    return results


def _replay_campaign(root: Path) -> list[ReplayResult]:
    """Replay one campaign directory (no recursion)."""
    manifest = json.loads((root / "campaign.json").read_text())
    if manifest.get("format_version") != CORPUS_FORMAT:
        raise ValueError(
            f"corpus format {manifest.get('format_version')!r} unsupported "
            f"(expected {CORPUS_FORMAT})"
        )
    config = FuzzConfig(**{
        key: tuple(value) if isinstance(value, list) else value
        for key, value in manifest["config"].items()
    })
    harness = FuzzHarness(config)
    results = []
    for name in manifest["entries"]:
        data = json.loads((root / name).read_text())
        spec = ScenarioSpec.from_dict(data["spec"])
        oracles = harness.run_oracles(spec)
        violations = [
            f"{oracle}: {violation}"
            for oracle, found in oracles.items()
            for violation in found
        ]
        drift = []
        run = harness.primary(spec)
        if run.digest != data["run_digest"]:
            drift.append(
                f"run digest drifted: {run.digest[:12]} != "
                f"{data['run_digest'][:12]}"
            )
        if run.forensics_digest != data["forensics_digest"]:
            drift.append("forensics digest drifted")
        stored = {
            oracle: list(found) for oracle, found in data["oracles"].items()
        }
        replayed = {oracle: list(found) for oracle, found in oracles.items()}
        if stored != replayed:
            drift.append("oracle verdicts drifted from the stored corpus")
        results.append(ReplayResult(name=name, violations=violations, drift=drift))
    return results
