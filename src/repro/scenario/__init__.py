"""Declarative fault injection and dynamic network conditions.

The paper diagnoses Fabric from steady-state runs; real deployments see
peer crashes, endorser slowdowns, latency spikes and bursty traffic.
This package widens the workload space BlockOptR can be validated
against:

* :mod:`repro.scenario.spec` — the :class:`ScenarioSpec` DSL: a named
  list of timed :class:`Intervention` records, JSON round-trippable;
* :mod:`repro.scenario.engine` — applies a spec to a
  :class:`~repro.fabric.network.FabricNetwork`: kernel-scheduled
  interventions (crash/recover, slowdowns, latency, orderer degradation)
  plus deterministic workload transforms (bursts, conflict storms);
* :mod:`repro.scenario.library` — named, ready-made scenarios used by
  the bench registry and ``python -m repro scenario``;
* :mod:`repro.scenario.fuzz` — the seeded scenario fuzzer: random
  compositions checked by differential oracles, shrunk to minimal
  reproducers, ranked by severity and promoted into the library
  (``python -m repro fuzz``).

Every scenario run stays bit-for-bit deterministic for a fixed seed: the
transforms are pure functions of the request list and interventions fire
on the kernel's dedicated priority lane.
"""

from repro.scenario.engine import ScenarioEngine, run_digest, run_scenario
from repro.scenario.fuzz import FuzzConfig, run_campaign
from repro.scenario.library import get_scenario, scenario_names
from repro.scenario.spec import Intervention, ScenarioSpec

__all__ = [
    "FuzzConfig",
    "Intervention",
    "ScenarioEngine",
    "ScenarioSpec",
    "get_scenario",
    "run_campaign",
    "run_digest",
    "run_scenario",
    "scenario_names",
]
