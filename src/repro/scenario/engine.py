"""Applies a :class:`ScenarioSpec` to a running :class:`FabricNetwork`.

Two application surfaces, both fully deterministic:

* **network interventions** are scheduled on the kernel's intervention
  priority lane (:meth:`Kernel.schedule_intervention`), so a fault at
  ``t`` is in effect before any workload event at ``t``;
* **workload interventions** are pure request-list transforms applied by
  :meth:`FabricNetwork.run` before submission (no RNG involved), so the
  same spec and seed always yield the same trace.

The engine records every intervention as it fires in :attr:`timeline`
(``(time, kind, detail)``), which the CLI prints and the determinism
tests compare across runs.
"""

from __future__ import annotations

import hashlib
import math
from typing import TYPE_CHECKING

from repro.fabric.transaction import TxRequest
from repro.scenario.spec import Intervention, ScenarioSpec
from repro.workloads.schedule import compress_window, piecewise_rate_times

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fabric.network import FabricNetwork, RunResult
    from repro.fabric.chaincode import Contract
    from repro.fabric.config import NetworkConfig


class ScenarioEngine:
    """Installs one scenario's interventions and transforms its workload."""

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec
        #: ``(simulated time, kind, detail)`` of every applied intervention,
        #: in firing order — the scenario's own event log.
        self.timeline: list[tuple[float, str, str]] = []

    # -- kernel-scheduled interventions --------------------------------------------

    def install(self, network: "FabricNetwork") -> None:
        """Schedule every network intervention on the network's kernel."""
        for iv in self.spec.network_interventions():
            apply, restore = self._actions(network, iv)
            network.kernel.schedule_intervention(iv.at, apply)
            if restore is not None and iv.end is not None:
                network.kernel.schedule_intervention(iv.end, restore)

    def _actions(self, network: "FabricNetwork", iv: Intervention):
        """(apply, restore) callbacks for one network intervention."""
        kernel = network.kernel

        def log(kind: str, detail: str) -> None:
            self.timeline.append((kernel.now, kind, detail))

        if iv.kind in ("peer_crash", "peer_recover"):
            peers = network.endorsers.peers(iv.target)
            up = iv.kind == "peer_recover"

            def set_enabled(enabled: bool, kind: str) -> None:
                for peer in peers:
                    peer.enabled = enabled
                log(kind, ",".join(peer.name for peer in peers))

            apply = lambda: set_enabled(up, iv.kind)
            restore = None
            if iv.kind == "peer_crash" and iv.duration is not None:
                restore = lambda: set_enabled(True, "peer_recover")
            return apply, restore

        if iv.kind == "endorser_slowdown":
            peers = network.endorsers.peers(iv.target)

            def set_factor(factor: float, kind: str) -> None:
                for peer in peers:
                    peer.set_service_multiplier(factor)
                log(kind, f"{','.join(p.name for p in peers)} x{factor:g}")

            return (
                lambda: set_factor(iv.factor, iv.kind),
                lambda: set_factor(1.0, "endorser_slowdown_end"),
            )

        if iv.kind == "latency_spike":
            conditions = network.conditions

            def set_delay(factor: float, kind: str) -> None:
                conditions.set_delay_multiplier(factor, source="scenario")
                log(kind, f"x{factor:g}")

            return (
                lambda: set_delay(iv.factor, iv.kind),
                lambda: set_delay(1.0, "latency_spike_end"),
            )

        if iv.kind == "orderer_degradation":
            orderer = network.orderer.server

            def set_orderer(factor: float, kind: str) -> None:
                orderer.set_service_multiplier(factor)
                log(kind, f"x{factor:g}")

            return (
                lambda: set_orderer(iv.factor, iv.kind),
                lambda: set_orderer(1.0, "orderer_degradation_end"),
            )

        if iv.kind == "region_lag":
            conditions = network.conditions
            org = iv.target
            if org not in network.config.org_names():
                raise KeyError(
                    f"region_lag target {org!r} is not an organization; "
                    f"known: {sorted(network.config.org_names())}"
                )

            def set_region(factor: float, kind: str) -> None:
                conditions.set_org_delay_multiplier(org, factor, source="scenario")
                log(kind, f"{org} x{factor:g}")

            return (
                lambda: set_region(iv.factor, iv.kind),
                lambda: set_region(1.0, "region_lag_end"),
            )

        raise ValueError(f"{iv.kind!r} is not a network intervention")

    # -- workload transforms ---------------------------------------------------------

    def transform_requests(self, requests: list[TxRequest]) -> list[TxRequest]:
        """Apply the workload interventions, in spec order.

        Pure and deterministic: the output depends only on the input
        request list and the spec.  Later interventions see the timeline
        produced by earlier ones (a conflict storm after a burst targets
        the compressed window).
        """
        out = list(requests)
        for iv in self.spec.workload_interventions():
            if iv.kind == "burst_arrivals":
                out = compress_window(out, iv.at, iv.duration, iv.factor)
                self.timeline.append(
                    (iv.at, iv.kind, f"{iv.duration:g}s window x{iv.factor:g}")
                )
            elif iv.kind == "conflict_storm":
                out, hit = _conflict_storm(out, iv)
                self.timeline.append(
                    (iv.at, iv.kind, f"{hit} {iv.activity!r} txs onto {iv.hot_keys} keys")
                )
            elif iv.kind == "rate_curve":
                out, moved = _rate_curve(out, iv)
                self.timeline.append(
                    (iv.at, iv.kind, f"{moved} txs onto a {len(iv.profile or ())}-point curve")
                )
            elif iv.kind == "hot_key_drift":
                out, hit = _hot_key_drift(out, iv)
                self.timeline.append(
                    (
                        iv.at,
                        iv.kind,
                        f"{hit} {iv.activity!r} txs over {iv.phases} drifting phases",
                    )
                )
            elif iv.kind == "mix_shift":
                out, shifted = _mix_shift(out, iv)
                self.timeline.append(
                    (
                        iv.at,
                        iv.kind,
                        f"{shifted} {iv.from_activity!r} txs -> {iv.to_activity!r}",
                    )
                )
        return out


def _candidate_keys(requests: list[TxRequest], activity: str) -> list[str]:
    """Sorted distinct first-argument keys of the activity's requests."""
    return sorted(
        {
            str(request.args[0])
            for request in requests
            if request.activity == activity and request.args
        }
    )


def _retarget_window(
    requests: list[TxRequest],
    start: float,
    end: float,
    activity: str,
    fraction: float,
    hot: list[str],
) -> tuple[list[TxRequest], int]:
    """Retarget ``fraction`` of the window's ``activity`` requests onto the
    ``hot`` key list (key-first argument convention).

    Selection spreads evenly over the window (request ``j`` is picked when
    ``floor((j+1)·fraction)`` increments) and hot keys are assigned
    round-robin — deterministic without touching any RNG stream.
    """
    if not hot:
        return list(requests), 0
    out: list[TxRequest] = []
    in_window = 0
    retargeted = 0
    for request in requests:
        if (
            request.activity == activity
            and request.args
            and start <= request.submit_time < end
        ):
            j = in_window
            in_window += 1
            if math.floor((j + 1) * fraction) > math.floor(j * fraction):
                out.append(
                    TxRequest(
                        submit_time=request.submit_time,
                        activity=request.activity,
                        args=(hot[retargeted % len(hot)],) + tuple(request.args[1:]),
                        contract=request.contract,
                        invoker_org=request.invoker_org,
                    )
                )
                retargeted += 1
                continue
        out.append(request)
    return out, retargeted


def _conflict_storm(
    requests: list[TxRequest], iv: Intervention
) -> tuple[list[TxRequest], int]:
    """A static contention storm: one hot-key set for the whole window."""
    hot = _candidate_keys(requests, iv.activity)[: iv.hot_keys]
    return _retarget_window(
        requests, iv.at, iv.at + iv.duration, iv.activity, iv.fraction, hot
    )


def _hot_key_drift(
    requests: list[TxRequest], iv: Intervention
) -> tuple[list[TxRequest], int]:
    """A drifting contention storm: the hot-key set rotates each phase.

    The window splits into ``iv.phases`` equal sub-windows; phase ``p``
    retargets onto the ``iv.hot_keys``-sized slice of the (sorted)
    candidate key list starting at ``p * hot_keys``, wrapping around — so
    contention moves across the key space the way a trending-item front
    page moves, instead of hammering one fixed set.
    """
    candidates = _candidate_keys(requests, iv.activity)
    if not candidates:
        return list(requests), 0
    span = iv.duration / iv.phases
    out = list(requests)
    total = 0
    for phase in range(iv.phases):
        start = iv.at + phase * span
        end = iv.at + iv.duration if phase == iv.phases - 1 else start + span
        offset = (phase * iv.hot_keys) % len(candidates)
        hot = [
            candidates[(offset + index) % len(candidates)]
            for index in range(min(iv.hot_keys, len(candidates)))
        ]
        out, hit = _retarget_window(out, start, end, iv.activity, iv.fraction, hot)
        total += hit
    return out, total


def _mix_shift(
    requests: list[TxRequest], iv: Intervention
) -> tuple[list[TxRequest], int]:
    """Rewrite a share of the window's ``from_activity`` requests to
    ``to_activity``, keeping only the key argument (the target activities
    are all invocable with the key alone), with the same even-spread
    selection as :func:`_retarget_window`.
    """
    end = iv.at + iv.duration
    out: list[TxRequest] = []
    in_window = 0
    shifted = 0
    for request in requests:
        if (
            request.activity == iv.from_activity
            and request.args
            and iv.at <= request.submit_time < end
        ):
            j = in_window
            in_window += 1
            if math.floor((j + 1) * iv.fraction) > math.floor(j * iv.fraction):
                out.append(
                    TxRequest(
                        submit_time=request.submit_time,
                        activity=iv.to_activity,
                        args=(request.args[0],),
                        contract=request.contract,
                        invoker_org=request.invoker_org,
                    )
                )
                shifted += 1
                continue
        out.append(request)
    return out, shifted


def _rate_curve(
    requests: list[TxRequest], iv: Intervention
) -> tuple[list[TxRequest], int]:
    """Re-time every request from ``iv.at`` onward onto the breakpoint
    profile — the k-th earliest affected request gets the k-th time of
    :func:`~repro.workloads.schedule.piecewise_rate_times`, so relative
    order is preserved while the arrival rate follows the curve.
    """
    affected = [
        index for index, request in enumerate(requests) if request.submit_time >= iv.at
    ]
    if not affected or not iv.profile:
        return list(requests), 0
    ranked = sorted(affected, key=lambda index: (requests[index].submit_time, index))
    profile = list(iv.profile)
    segments = [
        (profile[position + 1][0] - offset, rate)
        for position, (offset, rate) in enumerate(profile[:-1])
    ]
    # The last breakpoint's rate extends indefinitely; piecewise_rate_times
    # only needs a positive placeholder duration for its final segment.
    segments.append((1.0, profile[-1][1]))
    times = piecewise_rate_times(len(ranked), segments, start=iv.at)
    out = list(requests)
    for new_time, index in zip(times, ranked):
        request = requests[index]
        out[index] = TxRequest(
            submit_time=new_time,
            activity=request.activity,
            args=request.args,
            contract=request.contract,
            invoker_org=request.invoker_org,
        )
    return out, len(ranked)


def run_digest(network: "FabricNetwork") -> str:
    """SHA-256 fingerprint of a finished run's observable outcome.

    Covers the hash chain plus every transaction's status, block and
    commit time (which the block hash does not), and the aborted set —
    two runs are behaviourally identical iff their digests match.
    """
    digest = hashlib.sha256()
    digest.update(network.ledger.tip_hash.encode())
    for tx in network.ledger.transactions():
        status = tx.status.value if tx.status is not None else "?"
        digest.update(
            f"{tx.tx_id}|{status}|{tx.block_number}|{tx.commit_time!r}\n".encode()
        )
    for tx in network.aborted:
        digest.update(f"abort:{tx.tx_id}|{tx.abort_stage}|{tx.commit_time!r}\n".encode())
    return digest.hexdigest()


def run_scenario(
    spec: ScenarioSpec,
    config: "NetworkConfig",
    contracts: "list[Contract]",
    requests: list[TxRequest],
) -> "tuple[FabricNetwork, RunResult]":
    """Build a network under ``spec``, run ``requests``, return both.

    Convenience wrapper mirroring :func:`repro.fabric.network.run_workload`.
    """
    from repro.fabric.network import run_workload

    return run_workload(config, contracts, requests, scenario=spec)
