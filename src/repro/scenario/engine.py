"""Applies a :class:`ScenarioSpec` to a running :class:`FabricNetwork`.

Two application surfaces, both fully deterministic:

* **network interventions** are scheduled on the kernel's intervention
  priority lane (:meth:`Kernel.schedule_intervention`), so a fault at
  ``t`` is in effect before any workload event at ``t``;
* **workload interventions** are pure request-list transforms applied by
  :meth:`FabricNetwork.run` before submission (no RNG involved), so the
  same spec and seed always yield the same trace.

The engine records every intervention as it fires in :attr:`timeline`
(``(time, kind, detail)``), which the CLI prints and the determinism
tests compare across runs.
"""

from __future__ import annotations

import hashlib
import math
from typing import TYPE_CHECKING

from repro.fabric.transaction import TxRequest
from repro.scenario.spec import Intervention, ScenarioSpec
from repro.workloads.schedule import compress_window

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fabric.network import FabricNetwork, RunResult
    from repro.fabric.chaincode import Contract
    from repro.fabric.config import NetworkConfig


class ScenarioEngine:
    """Installs one scenario's interventions and transforms its workload."""

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec
        #: ``(simulated time, kind, detail)`` of every applied intervention,
        #: in firing order — the scenario's own event log.
        self.timeline: list[tuple[float, str, str]] = []

    # -- kernel-scheduled interventions --------------------------------------------

    def install(self, network: "FabricNetwork") -> None:
        """Schedule every network intervention on the network's kernel."""
        for iv in self.spec.network_interventions():
            apply, restore = self._actions(network, iv)
            network.kernel.schedule_intervention(iv.at, apply)
            if restore is not None and iv.end is not None:
                network.kernel.schedule_intervention(iv.end, restore)

    def _actions(self, network: "FabricNetwork", iv: Intervention):
        """(apply, restore) callbacks for one network intervention."""
        kernel = network.kernel

        def log(kind: str, detail: str) -> None:
            self.timeline.append((kernel.now, kind, detail))

        if iv.kind in ("peer_crash", "peer_recover"):
            peers = network.endorsers.peers(iv.target)
            up = iv.kind == "peer_recover"

            def set_enabled(enabled: bool, kind: str) -> None:
                for peer in peers:
                    peer.enabled = enabled
                log(kind, ",".join(peer.name for peer in peers))

            apply = lambda: set_enabled(up, iv.kind)
            restore = None
            if iv.kind == "peer_crash" and iv.duration is not None:
                restore = lambda: set_enabled(True, "peer_recover")
            return apply, restore

        if iv.kind == "endorser_slowdown":
            peers = network.endorsers.peers(iv.target)

            def set_factor(factor: float, kind: str) -> None:
                for peer in peers:
                    peer.set_service_multiplier(factor)
                log(kind, f"{','.join(p.name for p in peers)} x{factor:g}")

            return (
                lambda: set_factor(iv.factor, iv.kind),
                lambda: set_factor(1.0, "endorser_slowdown_end"),
            )

        if iv.kind == "latency_spike":
            conditions = network.conditions

            def set_delay(factor: float, kind: str) -> None:
                conditions.set_delay_multiplier(factor)
                log(kind, f"x{factor:g}")

            return (
                lambda: set_delay(iv.factor, iv.kind),
                lambda: set_delay(1.0, "latency_spike_end"),
            )

        if iv.kind == "orderer_degradation":
            orderer = network.orderer.server

            def set_orderer(factor: float, kind: str) -> None:
                orderer.set_service_multiplier(factor)
                log(kind, f"x{factor:g}")

            return (
                lambda: set_orderer(iv.factor, iv.kind),
                lambda: set_orderer(1.0, "orderer_degradation_end"),
            )

        raise ValueError(f"{iv.kind!r} is not a network intervention")

    # -- workload transforms ---------------------------------------------------------

    def transform_requests(self, requests: list[TxRequest]) -> list[TxRequest]:
        """Apply the workload interventions, in spec order.

        Pure and deterministic: the output depends only on the input
        request list and the spec.  Later interventions see the timeline
        produced by earlier ones (a conflict storm after a burst targets
        the compressed window).
        """
        out = list(requests)
        for iv in self.spec.workload_interventions():
            if iv.kind == "burst_arrivals":
                out = compress_window(out, iv.at, iv.duration, iv.factor)
                self.timeline.append(
                    (iv.at, iv.kind, f"{iv.duration:g}s window x{iv.factor:g}")
                )
            elif iv.kind == "conflict_storm":
                out, hit = _conflict_storm(out, iv)
                self.timeline.append(
                    (iv.at, iv.kind, f"{hit} {iv.activity!r} txs onto {iv.hot_keys} keys")
                )
        return out


def _conflict_storm(
    requests: list[TxRequest], iv: Intervention
) -> tuple[list[TxRequest], int]:
    """Retarget a share of the window's ``iv.activity`` requests onto a
    small hot-key set (key-first argument convention).

    Selection spreads evenly over the window (request ``j`` is picked when
    ``floor((j+1)·fraction)`` increments) and hot keys are assigned
    round-robin — deterministic without touching any RNG stream.
    """
    end = iv.at + iv.duration
    hot = sorted(
        {
            str(request.args[0])
            for request in requests
            if request.activity == iv.activity and request.args
        }
    )[: iv.hot_keys]
    if not hot:
        return list(requests), 0

    out: list[TxRequest] = []
    in_window = 0
    retargeted = 0
    for request in requests:
        if (
            request.activity == iv.activity
            and request.args
            and iv.at <= request.submit_time < end
        ):
            j = in_window
            in_window += 1
            if math.floor((j + 1) * iv.fraction) > math.floor(j * iv.fraction):
                out.append(
                    TxRequest(
                        submit_time=request.submit_time,
                        activity=request.activity,
                        args=(hot[retargeted % len(hot)],) + tuple(request.args[1:]),
                        contract=request.contract,
                        invoker_org=request.invoker_org,
                    )
                )
                retargeted += 1
                continue
        out.append(request)
    return out, retargeted


def run_digest(network: "FabricNetwork") -> str:
    """SHA-256 fingerprint of a finished run's observable outcome.

    Covers the hash chain plus every transaction's status, block and
    commit time (which the block hash does not), and the aborted set —
    two runs are behaviourally identical iff their digests match.
    """
    digest = hashlib.sha256()
    digest.update(network.ledger.tip_hash.encode())
    for tx in network.ledger.transactions():
        status = tx.status.value if tx.status is not None else "?"
        digest.update(
            f"{tx.tx_id}|{status}|{tx.block_number}|{tx.commit_time!r}\n".encode()
        )
    for tx in network.aborted:
        digest.update(f"abort:{tx.tx_id}|{tx.abort_stage}|{tx.commit_time!r}\n".encode())
    return digest.hexdigest()


def run_scenario(
    spec: ScenarioSpec,
    config: "NetworkConfig",
    contracts: "list[Contract]",
    requests: list[TxRequest],
) -> "tuple[FabricNetwork, RunResult]":
    """Build a network under ``spec``, run ``requests``, return both.

    Convenience wrapper mirroring :func:`repro.fabric.network.run_workload`.
    """
    from repro.fabric.network import run_workload

    return run_workload(config, contracts, requests, scenario=spec)
